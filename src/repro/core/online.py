"""Online mode: live monitoring of a running query (paper §4.2).

"Online mode components use a multi-threaded design.  As a first step,
the textual Stethoscope is launched in a dedicated thread [listening for
the UDP stream].  The query whose execution plan needs to be analyzed is
launched next in a separate thread.  ...  A separate thread monitors the
received UDP stream for dot file and execution trace file content."

The monitor builds the display as soon as the dot content has arrived,
then feeds trace events through the colouring algorithm into the render
queue.  When the queue backlog exceeds a threshold — the ~150 ms/node
render ceiling cannot keep up with a fast event stream — the monitor
*samples*: it keeps the RED (long-running) actions and drops GREEN
repaints, which is the run-time filtering the paper describes applying
to the buffered trace.
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.core.coloring import ColorAction, PairSequenceColorizer
from repro.core.painter import GraphPainter
from repro.core.textual import ServerConnection
from repro.dot.graph import Digraph
from repro.dot.parser import parse_dot
from repro.errors import DotError, StethoscopeError
from repro.layout import layout_graph
from repro.metrics.families import (
    ONLINE_COMPLETENESS,
    ONLINE_DEGRADED,
    ONLINE_EVENTS,
    ONLINE_INTERPOLATED,
    ONLINE_RUNS,
    ONLINE_SAMPLED_OUT,
    ONLINE_SEQUENCE_GAPS,
)
from repro.profiler.events import TraceEvent
from repro.viz.color import GREEN
from repro.viz.events import EventDispatchQueue
from repro.viz.vspace import VirtualSpace, build_virtual_space


@dataclass
class TraceHealth:
    """What the degraded-mode analysis learned about one query's stream.

    The profiler numbers every event 0..N-1 in emission order (the
    ``event`` field), so the receiver can audit what UDP did to the
    stream: duplicates, reordering, and — when no server-side filter
    was active — sequence gaps where datagrams were lost.
    """

    received: int = 0        # raw events handed to the analysis
    distinct: int = 0        # unique sequence numbers among them
    duplicates: int = 0      # events seen more than once
    out_of_order: int = 0    # events arriving behind a higher seq
    gaps: int = 0            # sequence numbers missing below the max
    interpolated: int = 0    # synthetic start events added
    ended: bool = True       # END marker observed
    plan_damaged: bool = False  # shipped dot content failed to parse

    @property
    def expected(self) -> int:
        """Events the observed sequence range says were emitted."""
        return self.distinct + self.gaps

    @property
    def completeness(self) -> float:
        """distinct/expected in [0, 1]; 1.0 for a clean stream.

        Relative to the *observed* range: a tail lost entirely (END
        and final events all dropped) is invisible here and shows up
        as ``ended=False`` instead.
        """
        if self.expected == 0:
            return 1.0
        return self.distinct / self.expected

    @property
    def degraded(self) -> bool:
        """Did the stream need repair to be trusted?"""
        return (not self.ended or self.plan_damaged or self.gaps > 0
                or self.duplicates > 0 or self.out_of_order > 0)


def analyze_stream(
    events: List[TraceEvent],
    trust_gaps: bool = True,
) -> Tuple[List[TraceEvent], TraceHealth]:
    """Normalise a possibly damaged event stream.

    Returns the events sorted by sequence number with duplicates
    removed, plus a :class:`TraceHealth` accounting of what was wrong.
    ``trust_gaps=False`` (set when a server-side filter was active, so
    missing sequence numbers are intentional) reports ``gaps=0``.
    """
    health = TraceHealth(received=len(events))
    seen: dict = {}
    highest = -1
    for event in events:
        if event.event in seen:
            health.duplicates += 1
            continue
        if event.event < highest:
            health.out_of_order += 1
        highest = max(highest, event.event)
        seen[event.event] = event
    health.distinct = len(seen)
    if trust_gaps and seen:
        health.gaps = (max(seen) + 1) - health.distinct
    ordered = [seen[key] for key in sorted(seen)]
    return ordered, health


def interpolate_pairs(
    ordered: List[TraceEvent],
) -> Tuple[List[TraceEvent], int]:
    """Synthesize start events for done events whose start was lost.

    The pair-sequence colorizer needs both halves of a pair; a done
    whose start never arrived would otherwise be dismissed as fast.
    Each synthetic start carries the done's statement and a clock
    derived from ``done.clock - done.usec``, and is inserted where the
    profiler would have emitted it: positioned by ``(clock, pc,
    start-before-done)`` — the exact emission order of the simulated
    scheduler, so a repaired deterministic trace recovers the original
    event order byte for byte — and never after its done event.
    """

    def emit_key(e: TraceEvent):
        return (e.clock_usec, e.pc, e.status == "done")

    started = {e.pc for e in ordered if e.status == "start"}
    out = list(ordered)
    added = 0
    for done in ordered:
        if done.status != "done" or done.pc in started:
            continue
        started.add(done.pc)
        synth = TraceEvent(
            event=done.event, clock_usec=max(0, done.clock_usec - done.usec),
            status="start", pc=done.pc, thread=done.thread, usec=0,
            rss_bytes=done.rss_bytes, stmt=done.stmt,
        )
        index = bisect.bisect_left([emit_key(e) for e in out],
                                   emit_key(synth))
        done_index = out.index(done)
        out.insert(min(index, done_index), synth)
        added += 1
    return out, added


@dataclass
class OnlineResult:
    """Everything an online monitoring run produced."""

    graph: Optional[Digraph]
    space: Optional[VirtualSpace]
    painter: Optional[GraphPainter]
    events: List[TraceEvent]
    dot_path: Optional[str]
    trace_path: Optional[str]
    query_result: Any
    sampled_out: int  # colour actions dropped by sampling
    red_pcs: List[int] = field(default_factory=list)
    #: live progress state at end of run (complete unless interrupted)
    progress: Any = None
    #: pop-ups raised for long-running instructions during the run
    popups: List[Any] = field(default_factory=list)
    #: stream-health accounting (always present; clean on happy runs)
    health: Optional[TraceHealth] = None
    #: True when the run finished through the degraded path
    degraded: bool = False
    #: normalised (deduped, seq-ordered, interpolated) event stream
    clean_events: List[TraceEvent] = field(default_factory=list)

    def to_offline_session(self, threshold_usec: Optional[int] = None):
        """Reopen this run's plan and trace as an offline session — the
        natural follow-up after live monitoring ends: replay what was
        just watched, at leisure."""
        from repro.core.session import OfflineSession
        from repro.dot.writer import graph_to_dot
        from repro.errors import StethoscopeError

        if self.graph is None:
            raise StethoscopeError("no plan was received during the run")
        return OfflineSession(graph_to_dot(self.graph), self.events,
                              threshold_usec)


class OnlineSession:
    """Drives one online monitoring run.

    Args:
        connection: the textual-stethoscope connection the server
            streams to.
        run_query: launches the query on the server (called in the query
            thread); its return value lands in the result.
        workdir: where the dot and trace files are written.
        backlog_threshold: render-queue backlog above which GREEN
            actions are sampled out.
        render_interval_ms: the EDT pacing (the paper's ~150 ms).
    """

    def __init__(self, connection: ServerConnection,
                 run_query: Callable[[], Any],
                 workdir: str,
                 backlog_threshold: int = 32,
                 render_interval_ms: float = 150.0,
                 popup_threshold_usec: int = 10_000) -> None:
        self.connection = connection
        self.run_query = run_query
        self.workdir = workdir
        self.backlog_threshold = backlog_threshold
        self.render_interval_ms = render_interval_ms
        self.popup_threshold_usec = popup_threshold_usec

    def run(self, timeout_s: float = 30.0, degraded_ok: bool = True,
            settle_s: float = 0.5) -> OnlineResult:
        """Run listener, query and monitor threads until the stream ends.

        With ``degraded_ok`` (the default), a stream damaged by UDP loss
        — missing END marker, sequence gaps, duplicated or reordered
        datagrams, an unparseable dot shipment — no longer raises or
        mis-animates: the monitor exits once the query is finished and
        the stream has been silent for ``settle_s``, normalises the
        events it did receive (deduplicate, reorder by sequence,
        interpolate lost starts), repaints the final coloring from the
        clean stream, and reports a :class:`TraceHealth` with a
        completeness score.  With ``degraded_ok=False`` the legacy
        contract holds: a lost END marker raises ``StethoscopeError``.

        Raises:
            StethoscopeError: only when ``degraded_ok=False`` and the
                stream never ended within the timeout.
        """
        ONLINE_RUNS.inc()
        stop = threading.Event()
        query_out: List[Any] = []
        query_err: List[BaseException] = []

        def listener() -> None:
            while not stop.is_set() and not self.connection.ended:
                self.connection.drain(timeout=0.02)

        def query() -> None:
            try:
                query_out.append(self.run_query())
            except BaseException as exc:  # surfaced after join
                query_err.append(exc)

        listener_thread = threading.Thread(target=listener, daemon=True)
        query_thread = threading.Thread(target=query, daemon=True)
        listener_thread.start()
        query_thread.start()

        from repro.core.progress import PopupManager, ProgressWindow

        graph: Optional[Digraph] = None
        space: Optional[VirtualSpace] = None
        painter: Optional[GraphPainter] = None
        colorizer = PairSequenceColorizer()
        progress: Optional[ProgressWindow] = None
        popups = PopupManager(self.popup_threshold_usec)
        consumed = 0
        sampled_out = 0
        plan_damaged = False
        dot_lines_tried = 0
        began = time.monotonic()
        deadline = began + timeout_s
        last_activity = began

        def elapsed_ms() -> float:
            return (time.monotonic() - began) * 1000.0

        while time.monotonic() < deadline:
            if graph is None and self.connection.dot_lines and \
                    (self.connection.events or self.connection.ended) and \
                    len(self.connection.dot_lines) > dot_lines_tried:
                # dot content is complete once execution events flow;
                # a truncated shipment may fail to parse — retry only
                # if more dot lines arrive, never crash the monitor
                dot_lines_tried = len(self.connection.dot_lines)
                try:
                    graph = parse_dot(self.connection.dot_text())
                except DotError:
                    plan_damaged = True
                else:
                    plan_damaged = False
                    space = build_virtual_space(layout_graph(graph))
                    painter = GraphPainter(
                        space, EventDispatchQueue(self.render_interval_ms)
                    )
            if graph is not None and progress is None:
                progress = ProgressWindow(plan_size=graph.node_count())
            new_events = self.connection.events[consumed:]
            consumed += len(new_events)
            if new_events:
                ONLINE_EVENTS.inc(len(new_events))
                last_activity = time.monotonic()
            for event in new_events:
                if progress is not None:
                    progress.observe(event)
                popups.observe(event)
                actions = colorizer.push(event)
                if painter is not None:
                    sampled_out += self._apply_sampled(painter, actions)
            if new_events:
                popups.tick(new_events[-1].clock_usec)
            if painter is not None:
                painter.pump(elapsed_ms())
            if self.connection.ended and consumed >= len(
                self.connection.events
            ):
                break
            if degraded_ok and not query_thread.is_alive() and \
                    time.monotonic() - last_activity > settle_s:
                # query finished and the stream has gone quiet without
                # an END marker — it was lost; do not wait out the full
                # timeout
                break
            time.sleep(0.005)
        stop.set()
        listener_thread.join(timeout=2.0)
        query_thread.join(timeout=2.0)
        if query_err:
            raise query_err[0]
        if not self.connection.ended and not degraded_ok:
            raise StethoscopeError(
                "online stream did not finish within the timeout"
            )
        clean, health = analyze_stream(
            self.connection.events,
            trust_gaps=self.connection.dropped == 0,
        )
        health.ended = self.connection.ended
        health.plan_damaged = plan_damaged
        degraded = health.degraded
        ONLINE_COMPLETENESS.observe(health.completeness * 100.0)
        if degraded:
            ONLINE_DEGRADED.inc()
            if health.gaps:
                ONLINE_SEQUENCE_GAPS.inc(health.gaps)
            clean, health.interpolated = interpolate_pairs(clean)
            if health.interpolated:
                ONLINE_INTERPOLATED.inc(health.interpolated)
            # repaint from the normalised stream: a fresh colorizer and
            # painter see the events as if they had arrived in order,
            # so the final coloring matches a clean run's
            colorizer = PairSequenceColorizer()
            if space is not None:
                painter = GraphPainter(
                    space, EventDispatchQueue(self.render_interval_ms)
                )
            for event in clean:
                actions = colorizer.push(event)
                if painter is not None:
                    painter.apply_all(actions)
        final_actions = colorizer.finish()
        if painter is not None:
            painter.apply_all(final_actions)
            painter.flush()
        dot_path = trace_path = None
        if self.connection.dot_lines:
            dot_path = os.path.join(self.workdir, "plan.dot")
            self.connection.write_dot_file(dot_path)
        if self.connection.events:
            trace_path = os.path.join(self.workdir, "query.trace")
            self.connection.write_trace_file(trace_path)
        return OnlineResult(
            graph=graph, space=space, painter=painter,
            events=list(self.connection.events),
            dot_path=dot_path, trace_path=trace_path,
            query_result=query_out[0] if query_out else None,
            sampled_out=sampled_out,
            red_pcs=sorted(colorizer.currently_red),
            progress=progress,
            popups=list(popups.popups),
            health=health,
            degraded=degraded,
            clean_events=clean,
        )

    def _apply_sampled(self, painter: GraphPainter,
                       actions: List[ColorAction]) -> int:
        """Apply actions with backlog-based sampling; returns drops."""
        dropped = 0
        for action in actions:
            if (painter.backlog() > self.backlog_threshold
                    and action.color == GREEN):
                dropped += 1
                continue
            painter.apply(action)
        if dropped:
            ONLINE_SAMPLED_OUT.inc(dropped)
        return dropped
