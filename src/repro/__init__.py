"""Stethoscope: a platform for interactive visual analysis of query
execution plans — a full Python reproduction of Gawade & Kersten
(VLDB 2012), including every substrate the paper's tool builds on.

Quickstart::

    from repro import Database, Profiler, Stethoscope, plan_to_dot, populate

    db = Database()
    populate(db.catalog, scale_factor=0.1)         # TPC-H data
    profiler = Profiler()
    outcome = db.execute(
        "select l_tax from lineitem where l_partkey = 1",  # paper Fig. 1
        listener=profiler,
    )
    session = Stethoscope.offline_from_memory(
        plan_to_dot(outcome.program), profiler.events
    )
    session.replay.run_to_end()
    print(session.render_ascii())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the Stethoscope itself (mapping, colouring,
  replay, online monitoring, analysis, pruning, micro-analysis);
* :mod:`repro.storage`, :mod:`repro.mal`, :mod:`repro.sqlfe`,
  :mod:`repro.server` — the MonetDB-like engine;
* :mod:`repro.profiler` — trace events, filters, UDP streaming;
* :mod:`repro.dot`, :mod:`repro.layout`, :mod:`repro.svg` — the
  GraphViz-like plan drawing pipeline;
* :mod:`repro.viz` — the ZVTM-like zoomable glyph toolkit;
* :mod:`repro.tpch`, :mod:`repro.workloads` — workloads;
* :mod:`repro.metrics` — engine-wide counters/gauges/histograms
  (see docs/metrics_reference.md and docs/operations.md).
"""

from repro.core import (
    PairSequenceColorizer,
    PlanTraceMap,
    ReplayController,
    Stethoscope,
    TextualStethoscope,
    ThresholdColorizer,
)
from repro.dot import parse_dot, plan_to_dot, plan_to_graph
from repro.layout import layout_graph
from repro.profiler import EventFilter, Profiler, TraceEvent, read_trace, write_trace
from repro.server import Database, MClient, Mserver
from repro.sqlfe import compile_sql
from repro.storage import BAT, Catalog
from repro.svg import layout_to_svg, svg_to_graph
from repro.tpch import populate, query_sql

__version__ = "1.0.0"

__all__ = [
    "BAT",
    "Catalog",
    "Database",
    "EventFilter",
    "MClient",
    "Mserver",
    "PairSequenceColorizer",
    "PlanTraceMap",
    "Profiler",
    "ReplayController",
    "Stethoscope",
    "TextualStethoscope",
    "ThresholdColorizer",
    "TraceEvent",
    "compile_sql",
    "layout_graph",
    "layout_to_svg",
    "parse_dot",
    "plan_to_dot",
    "plan_to_graph",
    "populate",
    "query_sql",
    "read_trace",
    "svg_to_graph",
    "write_trace",
    "__version__",
]
