"""MAL plan → dot file generation (the server side of the workflow).

One node per instruction, named ``n<pc>`` — the paper §3.3: "an
instruction execution trace statement with pc=1 maps to the node 'n1' in
the dot file.  The 'stmt' field ... maps to the 'label' field in the dot
file."  One edge per dataflow dependency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dot.graph import Digraph
from repro.mal.ast import MalProgram
from repro.mal.printer import format_instruction


def node_name(pc: int) -> str:
    """Dot node id for a program counter (``n<pc>``)."""
    return f"n{pc}"


def plan_to_graph(program: MalProgram) -> Digraph:
    """Build the dataflow DAG of a plan as a :class:`Digraph`."""
    graph = Digraph(program.name.replace(".", "_"))
    graph.attrs["rankdir"] = "TB"
    for instr in program.instructions:
        graph.add_node(node_name(instr.pc), {
            "label": format_instruction(instr, program),
            "shape": "box",
            "pc": str(instr.pc),
        })
    for pc, deps in sorted(program.dependencies().items()):
        for dep in sorted(deps):
            graph.add_edge(node_name(dep), node_name(pc))
    return graph


def plan_to_dot(program: MalProgram) -> str:
    """Render a plan's dataflow DAG as dot text."""
    return graph_to_dot(plan_to_graph(program))


def graph_to_dot(graph: Digraph) -> str:
    """Render any :class:`Digraph` as dot text (parseable by
    :func:`repro.dot.parser.parse_dot`)."""
    lines: List[str] = [f"digraph {graph.name} {{"]
    for key, value in graph.attrs.items():
        lines.append(f"    {key}={_quote(value)};")
    for node in graph.nodes.values():
        attrs = _format_attrs(node.attrs)
        lines.append(f"    {node.node_id}{attrs};")
    for edge in graph.edges:
        attrs = _format_attrs(edge.attrs)
        lines.append(f"    {edge.src} -> {edge.dst}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def _format_attrs(attrs: Dict[str, str]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={_quote(value)}" for key, value in attrs.items())
    return f" [{inner}]"


_BARE_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _quote(value: str) -> str:
    text = str(value)
    if text and all(c in _BARE_OK for c in text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'
