"""DOT graph representation of MAL plans.

"The MonetDB server generates a dot file representation for each MAL plan
before execution begins" (paper §3).  This package provides the graph
model, the writer that turns a MAL plan's dataflow DAG into dot text, and
a parser for the dot language subset those files use — the first stage of
the Stethoscope workflow (dot file → svg → in-memory graph).
"""

from repro.dot.graph import Digraph, Edge, Node
from repro.dot.parser import parse_dot
from repro.dot.writer import graph_to_dot, plan_to_dot, plan_to_graph

__all__ = [
    "Digraph",
    "Edge",
    "Node",
    "graph_to_dot",
    "parse_dot",
    "plan_to_dot",
    "plan_to_graph",
]
