"""Directed graph model shared by the dot writer/parser and the layout
engine.

A MAL plan's dot file is a DAG: one node per instruction (named ``n<pc>``,
labelled with the statement text) and one edge per dataflow dependency.
The Stethoscope keeps this structure in memory and navigates it, so the
model favours cheap neighbour queries and stable ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import DotError


class Node:
    """A graph node with a label and free-form string attributes."""

    __slots__ = ("node_id", "attrs")

    def __init__(self, node_id: str, attrs: Optional[Dict[str, str]] = None) -> None:
        self.node_id = node_id
        self.attrs: Dict[str, str] = dict(attrs or {})

    @property
    def label(self) -> str:
        """The node's label (defaults to its id, like GraphViz)."""
        return self.attrs.get("label", self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Node({self.node_id})"


class Edge:
    """A directed edge with free-form string attributes."""

    __slots__ = ("src", "dst", "attrs")

    def __init__(self, src: str, dst: str,
                 attrs: Optional[Dict[str, str]] = None) -> None:
        self.src = src
        self.dst = dst
        self.attrs: Dict[str, str] = dict(attrs or {})

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Edge({self.src}->{self.dst})"


class Digraph:
    """A directed graph with named nodes.

    Node/edge insertion order is preserved; duplicate edges are allowed
    (dot permits them) but :meth:`add_node` rejects duplicate ids.
    """

    def __init__(self, name: str = "G",
                 attrs: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.nodes: Dict[str, Node] = {}
        self.edges: List[Edge] = []
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node_id: str,
                 attrs: Optional[Dict[str, str]] = None) -> Node:
        """Add a node; raises DotError on a duplicate id."""
        if node_id in self.nodes:
            raise DotError(f"duplicate node id {node_id!r}")
        node = Node(node_id, attrs)
        self.nodes[node_id] = node
        self._out[node_id] = []
        self._in[node_id] = []
        return node

    def ensure_node(self, node_id: str) -> Node:
        """Get the node, creating a bare one if absent (dot semantics:
        mentioning a node in an edge declares it)."""
        if node_id not in self.nodes:
            return self.add_node(node_id)
        return self.nodes[node_id]

    def add_edge(self, src: str, dst: str,
                 attrs: Optional[Dict[str, str]] = None) -> Edge:
        """Add a directed edge, declaring endpoints as needed."""
        self.ensure_node(src)
        self.ensure_node(dst)
        edge = Edge(src, dst, attrs)
        self.edges.append(edge)
        self._out[src].append(dst)
        self._in[dst].append(src)
        return edge

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        """Look up a node; raises DotError when missing."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise DotError(f"no node {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self.nodes

    def successors(self, node_id: str) -> List[str]:
        """Targets of out-edges, in insertion order."""
        return list(self._out.get(node_id, []))

    def predecessors(self, node_id: str) -> List[str]:
        """Sources of in-edges, in insertion order."""
        return list(self._in.get(node_id, []))

    def out_degree(self, node_id: str) -> int:
        return len(self._out.get(node_id, []))

    def in_degree(self, node_id: str) -> int:
        return len(self._in.get(node_id, []))

    def roots(self) -> List[str]:
        """Nodes with no incoming edges (plan sources: binds, mvc)."""
        return [n for n in self.nodes if not self._in[n]]

    def leaves(self) -> List[str]:
        """Nodes with no outgoing edges (plan sinks: result export)."""
        return [n for n in self.nodes if not self._out[n]]

    def node_count(self) -> int:
        return len(self.nodes)

    def edge_count(self) -> int:
        return len(self.edges)

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises DotError when the graph has a cycle."""
        indegree = {n: 0 for n in self.nodes}
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = deque(n for n in self.nodes if indegree[n] == 0)
        order: List[str] = []
        while ready:
            node_id = ready.popleft()
            order.append(node_id)
            for succ in self._out[node_id]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise DotError("graph contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except DotError:
            return False

    def reachable_from(self, node_id: str) -> Set[str]:
        """All nodes reachable by following out-edges (incl. the start)."""
        seen: Set[str] = set()
        stack = [node_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._out.get(current, []))
        return seen

    def bfs_layers(self, starts: Optional[List[str]] = None) -> List[List[str]]:
        """Breadth-first layers from the roots (or given starts); used by
        the bird's-eye view to cluster the plan."""
        if starts is None:
            starts = self.roots() or list(self.nodes)[:1]
        seen: Set[str] = set(starts)
        layers = [list(starts)]
        frontier = list(starts)
        while frontier:
            nxt: List[str] = []
            for node_id in frontier:
                for succ in self._out.get(node_id, []):
                    if succ not in seen:
                        seen.add(succ)
                        nxt.append(succ)
            if nxt:
                layers.append(nxt)
            frontier = nxt
        return layers

    def subgraph(self, keep: Set[str]) -> "Digraph":
        """An induced subgraph over ``keep`` (pruning helper)."""
        out = Digraph(self.name, dict(self.attrs))
        for node_id, node in self.nodes.items():
            if node_id in keep:
                out.add_node(node_id, dict(node.attrs))
        for edge in self.edges:
            if edge.src in keep and edge.dst in keep:
                out.add_edge(edge.src, edge.dst, dict(edge.attrs))
        return out
