"""Parser for the dot language subset MAL plan files use.

Covers the constructs that occur in generated plan files and common
hand-written graphs::

    digraph name {
        rankdir=TB;                      // graph attribute
        node [shape=box];                // node defaults
        edge [color=gray];               // edge defaults
        n0 [label="...", shape=box];     // node with attributes
        n0 -> n1 -> n2 [weight=2];       // edge chains
        subgraph cluster_0 { ... }       // flattened into the parent
    }

Comments (``//``, ``#``, ``/* */``) are ignored.  Errors raise
:class:`~repro.errors.DotParseError` with a line number.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import DotParseError
from repro.dot.graph import Digraph

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|\#[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<arrow>->)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*|-?\d+(?:\.\d+)?)
  | (?P<punct>[{}\[\];,=])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {"digraph", "graph", "subgraph", "node", "edge", "strict"}


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DotParseError(
                f"line {line}: unexpected character {text[pos]!r}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind in ("ws", "comment"):
            line += value.count("\n")
        else:
            tokens.append(_Token(kind, value, line))
            line += value.count("\n")
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.graph: Optional[Digraph] = None
        self.node_defaults: Dict[str, str] = {}
        self.edge_defaults: Dict[str, str] = {}

    def peek(self) -> _Token:
        return self.tokens[min(self.index, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise DotParseError(
                f"line {token.line}: expected {text or kind!r}, "
                f"got {token.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # ------------------------------------------------------------------

    def parse(self) -> Digraph:
        self.accept("name", "strict")
        header = self.expect("name")
        if header.text != "digraph":
            raise DotParseError(
                f"line {header.line}: only 'digraph' graphs are supported"
            )
        name = "G"
        token = self.peek()
        if token.kind in ("name", "string") and token.text != "{":
            name = self._unquote(self.advance())
        self.graph = Digraph(name)
        self._parse_body()
        if self.peek().kind != "eof":
            token = self.peek()
            raise DotParseError(
                f"line {token.line}: trailing input {token.text!r}"
            )
        return self.graph

    def _parse_body(self) -> None:
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            if self.peek().kind == "eof":
                raise DotParseError(
                    f"line {self.peek().line}: missing closing brace"
                )
            self._parse_statement()

    def _parse_statement(self) -> None:
        token = self.peek()
        if token.kind == "name" and token.text == "subgraph":
            self.advance()
            if self.peek().kind in ("name", "string") and \
                    self.peek().text != "{":
                self.advance()  # subgraph name, ignored (flattened)
            self._parse_body()
            self.accept("punct", ";")
            return
        if token.kind == "name" and token.text in ("node", "edge", "graph"):
            kind = self.advance().text
            attrs = self._parse_attr_list() or {}
            if kind == "node":
                self.node_defaults.update(attrs)
            elif kind == "edge":
                self.edge_defaults.update(attrs)
            else:
                self.graph.attrs.update(attrs)
            self.accept("punct", ";")
            return
        first = self._parse_id()
        if self.accept("punct", "="):
            value_token = self.peek()
            if value_token.kind not in ("name", "string"):
                raise DotParseError(
                    f"line {value_token.line}: expected attribute value"
                )
            self.graph.attrs[first] = self._unquote(self.advance())
            self.accept("punct", ";")
            return
        chain = [first]
        while self.accept("arrow"):
            chain.append(self._parse_id())
        attrs = self._parse_attr_list()
        if len(chain) == 1:
            node = self.graph.ensure_node(first)
            merged = dict(self.node_defaults)
            merged.update(node.attrs)
            merged.update(attrs or {})
            node.attrs = merged
        else:
            for src, dst in zip(chain, chain[1:]):
                for endpoint in (src, dst):
                    if endpoint not in self.graph.nodes:
                        self.graph.add_node(endpoint,
                                            dict(self.node_defaults))
                merged = dict(self.edge_defaults)
                merged.update(attrs or {})
                self.graph.add_edge(src, dst, merged)
        self.accept("punct", ";")

    def _parse_id(self) -> str:
        token = self.peek()
        if token.kind not in ("name", "string"):
            raise DotParseError(
                f"line {token.line}: expected node id, got {token.text!r}"
            )
        if token.text in _KEYWORDS:
            raise DotParseError(
                f"line {token.line}: keyword {token.text!r} cannot be an id"
            )
        return self._unquote(self.advance())

    def _parse_attr_list(self) -> Optional[Dict[str, str]]:
        if not self.accept("punct", "["):
            return None
        attrs: Dict[str, str] = {}
        while not self.accept("punct", "]"):
            key = self._unquote(self.expect_any(("name", "string")))
            self.expect("punct", "=")
            value = self._unquote(self.expect_any(("name", "string")))
            attrs[key] = value
            self.accept("punct", ",")
            self.accept("punct", ";")
        return attrs

    def expect_any(self, kinds: Tuple[str, ...]) -> _Token:
        token = self.peek()
        if token.kind not in kinds:
            raise DotParseError(
                f"line {token.line}: expected {' or '.join(kinds)}, "
                f"got {token.text!r}"
            )
        return self.advance()

    @staticmethod
    def _unquote(token: _Token) -> str:
        if token.kind == "string":
            inner = token.text[1:-1]
            return inner.replace('\\"', '"').replace("\\\\", "\\").replace(
                "\\n", "\n"
            )
        return token.text


def parse_dot(text: str) -> Digraph:
    """Parse dot text into a :class:`~repro.dot.graph.Digraph`.

    Raises:
        DotParseError: on syntax errors, with a line number.
    """
    return _Parser(text).parse()
