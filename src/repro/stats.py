"""Runtime statistics: the feedback store behind adaptive optimization.

Every executed plan leaves a trail of :class:`~repro.mal.interpreter.
InstructionRun` records — per-instruction wall latency plus input and
output cardinalities, exactly what the profiler streams to the
Stethoscope.  :class:`StatsStore` ingests those completed traces and
keeps EWMA-smoothed summaries keyed by *normalized instruction
signatures*: a selection is keyed by the column it touches and the
constants it compares against (``algebra.select(sys.lineitem.l_quantity;
24)``), not by the variable names of one particular compile, so the same
logical operator accumulates statistics across compiles, plan-cache
generations and mitosis partitions.

Three consumers close the loop:

* the ``adaptive_order`` optimizer pass asks :meth:`StatsStore.
  selectivity` to run commutable select chains most-selective-first;
* the plan cache compares a cached plan's recorded latency against what
  :meth:`StatsStore.observe_query` keeps seeing and evicts on >= 2x
  drift;
* deadline-carrying queries ask :meth:`StatsStore.choose_pipeline` for
  the cheapest plan variant predicted to fit (Maliva-style
  time-constrained planning).

Entries are additionally keyed by the catalog fingerprint, so statistics
observed against one dataset never steer planning for another.  Memory
is bounded (LRU over signatures); the whole store round-trips through a
CRC-trailed JSON snapshot kept alongside the catalog, using the same
trailer idiom as :mod:`repro.storage.persist`.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.mal.ast import Const, MalProgram, Var
from repro.metrics.families import (
    STATS_ENTRIES, STATS_EVICTIONS, STATS_OBSERVATIONS, STATS_SNAPSHOTS,
)

_FORMAT_VERSION = 1
#: same whole-file checksum trailer the catalog persistence uses
_CRC_PREFIX = "\n#crc32="

#: instructions whose output/input ratio is an observed selectivity
_SELECT_FUNCTIONS = frozenset((
    "algebra.select", "algebra.thetaselect", "algebra.likeselect",
))

#: def-chain hops the signature resolver follows from a selection's
#: source back to the ``sql.bind`` naming its column
_RESOLVE_THROUGH = frozenset((
    "algebra.leftjoin", "algebra.semijoin", "algebra.kdifference",
    "bat.mirror", "algebra.markT", "bat.reverse", "algebra.slice",
))


def _format_const(value: Any) -> str:
    if value is None:
        return "nil"
    return repr(value)


def program_signatures(program: MalProgram) -> Dict[int, str]:
    """Normalized signature per pc of ``program``.

    Selection instructions resolve their source variable back through
    projection/candidate plumbing (leftjoin, semijoin, mirror, slice) to
    the ``sql.bind`` that names the underlying column; the signature is
    then ``module.function(schema.table.column;consts)`` — stable across
    compiles, optimizer pipelines and mitosis partitioning.  Every other
    instruction is keyed by its qualified name alone, which is enough
    for per-operator latency profiles.
    """
    defs: Dict[str, Any] = {}
    for instr in program.instructions:
        for result in instr.results:
            defs[result] = instr

    def column_of(var_name: str) -> Optional[str]:
        instr = defs.get(var_name)
        hops = 0
        while instr is not None and hops < 16:
            qname = instr.qualified_name
            if qname == "sql.bind" and len(instr.args) >= 4:
                parts = []
                for arg in instr.args[1:4]:
                    if not isinstance(arg, Const):
                        return None
                    parts.append(str(arg.value))
                return ".".join(parts)
            if qname not in _RESOLVE_THROUGH:
                return None
            # leftjoin projects the *column* side (arg 1); the candidate
            # plumbing (semijoin, mirror, markT, ...) follows arg 0
            position = 1 if qname == "algebra.leftjoin" else 0
            if position >= len(instr.args):
                return None
            source = instr.args[position]
            if not isinstance(source, Var):
                return None
            instr = defs.get(source.name)
            hops += 1
        return None

    signatures: Dict[int, str] = {}
    for instr in program.instructions:
        qname = instr.qualified_name
        if qname in _SELECT_FUNCTIONS and instr.args:
            source = instr.args[0]
            column = (column_of(source.name)
                      if isinstance(source, Var) else None)
            consts = ",".join(
                _format_const(arg.value) for arg in instr.args[1:]
                if isinstance(arg, Const)
            )
            signatures[instr.pc] = f"{qname}({column or '?'};{consts})"
        else:
            signatures[instr.pc] = qname
    return signatures


def select_signature(qname: str, column: str,
                     const_args: Sequence[Const]) -> str:
    """The signature :func:`program_signatures` would assign a selection
    on ``column`` with the given constant arguments (compile-time
    mirror, used by the ``adaptive_order`` pass for lookups)."""
    consts = ",".join(_format_const(arg.value) for arg in const_args)
    return f"{qname}({column};{consts})"


class _Entry:
    """EWMA state for one (fingerprint, signature) key."""

    __slots__ = ("latency_usec", "selectivity", "observations", "rows_in")

    def __init__(self) -> None:
        self.latency_usec: float = 0.0
        self.selectivity: Optional[float] = None
        self.observations: int = 0
        self.rows_in: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "lat": round(self.latency_usec, 3),
            "sel": (None if self.selectivity is None
                    else round(self.selectivity, 9)),
            "n": self.observations,
            "rows_in": self.rows_in,
        }


class StatsStore:
    """Thread-safe, bounded, persistable runtime statistics.

    Args:
        capacity: maximum signature entries kept (LRU beyond it); the
            query-variant table is bounded by ``capacity // 4``.
        alpha: EWMA smoothing factor — weight of the newest observation.
    """

    def __init__(self, capacity: int = 4096, alpha: float = 0.3) -> None:
        if capacity < 1:
            raise ValueError("stats capacity must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.capacity = capacity
        self.alpha = alpha
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._queries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.observations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    @staticmethod
    def _fp_key(fingerprint: Tuple) -> str:
        return ":".join(str(part) for part in fingerprint)

    @classmethod
    def _entry_key(cls, fingerprint: Tuple, signature: str) -> str:
        return f"{cls._fp_key(fingerprint)}|{signature}"

    @classmethod
    def _query_key(cls, fingerprint: Tuple, nsql: str, pipeline: str,
                   workers: int) -> str:
        return f"{cls._fp_key(fingerprint)}|{pipeline}|{workers}|{nsql}"

    def _touch(self, table: "OrderedDict[str, _Entry]", key: str,
               capacity: int) -> _Entry:
        entry = table.get(key)
        if entry is None:
            entry = _Entry()
            table[key] = entry
            while len(table) > capacity:
                table.popitem(last=False)
                self.evictions += 1
                STATS_EVICTIONS.inc()
        else:
            table.move_to_end(key)
        return entry

    def _ewma(self, old: Optional[float], new: float) -> float:
        if old is None:
            return new
        return old + self.alpha * (new - old)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def observe_program(self, program: MalProgram, runs: Sequence,
                        fingerprint: Tuple) -> int:
        """Ingest one completed execution's instruction-run trace.

        ``runs`` are the :class:`~repro.mal.interpreter.InstructionRun`
        records an execution produced (what the profiler saw); the
        latency of every instruction and the observed selectivity of
        every selection are folded into the EWMA entries.  Returns the
        number of runs ingested.
        """
        signatures = program_signatures(program)
        ingested = 0
        with self._lock:
            for run in runs:
                signature = signatures.get(run.pc)
                if signature is None:
                    continue
                entry = self._touch(self._entries, self._entry_key(
                    fingerprint, signature), self.capacity)
                entry.latency_usec = self._ewma(
                    entry.latency_usec if entry.observations else None,
                    float(run.usec))
                rows_in = getattr(run, "rows_in", 0)
                if "(" in signature and rows_in > 0:
                    entry.selectivity = self._ewma(
                        entry.selectivity, run.rows / float(rows_in))
                    entry.rows_in = rows_in
                entry.observations += 1
                ingested += 1
            self.observations += ingested
            STATS_ENTRIES.set(len(self._entries) + len(self._queries))
        if ingested:
            STATS_OBSERVATIONS.labels(kind="instruction").inc(ingested)
        return ingested

    def observe_query(self, nsql: str, pipeline: str, workers: int,
                      usec: float, fingerprint: Tuple) -> None:
        """Fold one whole-query latency into its (sql, variant) entry."""
        with self._lock:
            entry = self._touch(
                self._queries,
                self._query_key(fingerprint, nsql, pipeline, workers),
                max(1, self.capacity // 4))
            entry.latency_usec = self._ewma(
                entry.latency_usec if entry.observations else None,
                float(usec))
            entry.observations += 1
            self.observations += 1
            STATS_ENTRIES.set(len(self._entries) + len(self._queries))
        STATS_OBSERVATIONS.labels(kind="query").inc()

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def selectivity(self, signature: str,
                    fingerprint: Tuple) -> Optional[float]:
        """Observed selectivity of a selection signature, or None."""
        with self._lock:
            entry = self._entries.get(
                self._entry_key(fingerprint, signature))
            if entry is None:
                return None
            return entry.selectivity

    def latency_usec(self, signature: str,
                     fingerprint: Tuple) -> Optional[float]:
        """EWMA latency of an instruction signature, or None."""
        with self._lock:
            entry = self._entries.get(
                self._entry_key(fingerprint, signature))
            if entry is None or not entry.observations:
                return None
            return entry.latency_usec

    def query_latency(self, nsql: str, pipeline: str, workers: int,
                      fingerprint: Tuple) -> Optional[float]:
        """EWMA latency of one (sql, pipeline, workers) variant."""
        with self._lock:
            entry = self._queries.get(
                self._query_key(fingerprint, nsql, pipeline, workers))
            if entry is None or not entry.observations:
                return None
            return entry.latency_usec

    def query_variants(self, nsql: str, workers: int,
                       fingerprint: Tuple) -> Dict[str, float]:
        """Every observed pipeline variant of ``nsql`` with its
        predicted (EWMA) latency in microseconds."""
        prefix = self._fp_key(fingerprint) + "|"
        suffix = f"|{workers}|{nsql}"
        variants: Dict[str, float] = {}
        with self._lock:
            for key, entry in self._queries.items():
                if not entry.observations:
                    continue
                if key.startswith(prefix) and key.endswith(suffix):
                    pipeline = key[len(prefix):-len(suffix)]
                    variants[pipeline] = entry.latency_usec
        return variants

    def choose_pipeline(self, nsql: str, workers: int, fingerprint: Tuple,
                        deadline_usec: float,
                        default: str) -> Tuple[str, bool]:
        """Maliva-style cheapest-feasible variant selection.

        Returns ``(pipeline, rerouted)``.  The default pipeline wins
        whenever its predicted latency fits the deadline (or was never
        observed); otherwise the cheapest observed variant is chosen —
        feasible if any variant fits, cheapest-overall if none does.
        """
        variants = self.query_variants(nsql, workers, fingerprint)
        if not variants:
            return default, False
        predicted_default = variants.get(default)
        if predicted_default is None or predicted_default <= deadline_usec:
            return default, False
        cheapest = min(variants, key=variants.get)
        if cheapest == default:
            return default, False
        return cheapest, True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries) + len(self._queries)

    def summary(self) -> Dict[str, Any]:
        """Counters and occupancy for the ``stats`` verb / CLI view."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "query_entries": len(self._queries),
                "capacity": self.capacity,
                "alpha": self.alpha,
                "observations": self.observations,
                "evictions": self.evictions,
            }

    def top_entries(self, limit: int = 20) -> List[Dict[str, Any]]:
        """The ``limit`` hottest signature entries, by EWMA latency."""
        with self._lock:
            ranked = sorted(self._entries.items(),
                            key=lambda kv: kv[1].latency_usec,
                            reverse=True)[:limit]
            return [dict(key=key, **entry.as_dict())
                    for key, entry in ranked]

    # ------------------------------------------------------------------
    # persistence (CRC-trailed JSON, alongside the catalog)
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The whole store as one JSON-serializable document."""
        with self._lock:
            return {
                "version": _FORMAT_VERSION,
                "capacity": self.capacity,
                "alpha": self.alpha,
                "observations": self.observations,
                "entries": {key: entry.as_dict()
                            for key, entry in self._entries.items()},
                "queries": {key: entry.as_dict()
                            for key, entry in self._queries.items()},
            }

    def save(self, path: str) -> int:
        """Atomically write the snapshot to ``path``; returns entry count.

        Same discipline as the catalog: temp file in the same directory,
        fsync, rename — plus the ``#crc32=`` trailer so a torn or
        bit-rotted snapshot is detected at load instead of half-read.
        """
        document = self.snapshot()
        text = json.dumps(document)
        text += f"{_CRC_PREFIX}{zlib.crc32(text.encode('utf-8')):08x}\n"
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        STATS_SNAPSHOTS.labels(op="save").inc()
        return len(document["entries"]) + len(document["queries"])

    @classmethod
    def load(cls, path: str) -> "StatsStore":
        """Rebuild a store saved by :meth:`save`.

        Raises:
            StorageError: checksum mismatch, malformed JSON, or an
                unsupported format version.
        """
        with open(path) as handle:
            text = handle.read()
        crc_at = text.rfind(_CRC_PREFIX)
        if crc_at != -1:
            body = text[:crc_at]
            trailer = text[crc_at + len(_CRC_PREFIX):]
            try:
                expected = int(trailer.strip(), 16)
            except ValueError:
                raise StorageError(
                    f"corrupt stats snapshot {path!r}: malformed "
                    f"checksum trailer") from None
            actual = zlib.crc32(body.encode("utf-8"))
            if actual != expected:
                raise StorageError(
                    f"corrupt stats snapshot {path!r}: checksum "
                    f"mismatch (expected {expected:08x}, computed "
                    f"{actual:08x})")
            text = body
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StorageError(
                f"corrupt stats snapshot {path!r}: {exc}") from None
        if not isinstance(document, dict) or \
                document.get("version") != _FORMAT_VERSION:
            raise StorageError(
                f"unsupported stats snapshot version "
                f"{document.get('version') if isinstance(document, dict) else document!r}")
        store = cls(capacity=int(document.get("capacity", 4096)),
                    alpha=float(document.get("alpha", 0.3)))
        for table_name, table in (("entries", store._entries),
                                  ("queries", store._queries)):
            saved = document.get(table_name, {})
            if not isinstance(saved, dict):
                raise StorageError(
                    f"corrupt stats snapshot {path!r}: {table_name} is "
                    f"not an object")
            for key, fields in saved.items():
                if not isinstance(fields, dict):
                    raise StorageError(
                        f"corrupt stats snapshot {path!r}: entry "
                        f"{key!r} is not an object")
                entry = _Entry()
                entry.latency_usec = float(fields.get("lat", 0.0))
                sel = fields.get("sel")
                entry.selectivity = None if sel is None else float(sel)
                entry.observations = int(fields.get("n", 0))
                entry.rows_in = int(fields.get("rows_in", 0))
                table[key] = entry
        store.observations = int(document.get("observations", 0))
        STATS_SNAPSHOTS.labels(op="load").inc()
        STATS_ENTRIES.set(len(store))
        return store
