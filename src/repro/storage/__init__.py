"""Columnar storage substrate: BATs, typed columns, and a catalog.

MonetDB stores every column as a *Binary Association Table* (BAT): a table
of (head, tail) pairs where the head is an object identifier (oid) and the
tail a value.  The MAL algebra operates on BATs.  This package provides a
faithful in-memory Python model of that storage layer, sufficient to run
real query plans produced by the SQL front end.
"""

from repro.storage.types import (
    BIT,
    DATE,
    DBL,
    FLT,
    INT,
    LNG,
    OID,
    STR,
    MalType,
    cast_value,
    infer_type,
    nil,
    parse_value,
    type_by_name,
)
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog, Column, Schema, Table
from repro.storage.durable import (
    CheckpointReport,
    DurableEngine,
    RecoveryReport,
    WriteAheadLog,
    catalog_canonical_bytes,
    recover,
)

__all__ = [
    "BAT",
    "BIT",
    "DATE",
    "DBL",
    "FLT",
    "INT",
    "LNG",
    "OID",
    "STR",
    "Catalog",
    "CheckpointReport",
    "Column",
    "DurableEngine",
    "MalType",
    "RecoveryReport",
    "Schema",
    "Table",
    "WriteAheadLog",
    "cast_value",
    "catalog_canonical_bytes",
    "recover",
    "infer_type",
    "nil",
    "parse_value",
    "type_by_name",
]
