"""Restricted unpickling for durable and shipped payloads.

WAL records, checkpoint column files, and partition ship payloads are
pickled, and after PR 9 those bytes also travel the network (WAL
shipping to replicas).  Plain :func:`pickle.loads` would execute any
``__reduce__`` a corrupted or hostile payload smuggles in; this module
restricts the unpickler to the exact globals the write side ever emits
— container/scalar builtins need no global lookup, so the allowlist is
just :class:`datetime.date` (date-typed column tails and date literals
in INSERT rows).

Anything else fails with :class:`pickle.UnpicklingError`; callers wrap
that into their typed error (:class:`~repro.errors.WalError`,
:class:`~repro.errors.CheckpointError`,
:class:`~repro.errors.PartitionShipError`).
"""

from __future__ import annotations

import datetime
import io
import pickle
from typing import Any

#: The only globals a durable payload may reference.  Everything the
#: engine persists is built from JSON-ish scalars and containers plus
#: ``datetime.date`` — extend this (deliberately, with review) if a new
#: atom type ever needs a global.
_ALLOWED = {
    ("datetime", "date"): datetime.date,
}


class _RestrictedUnpickler(pickle.Unpickler):
    """An unpickler whose global lookups hit a closed allowlist."""

    def find_class(self, module: str, name: str) -> Any:
        try:
            return _ALLOWED[(module, name)]
        except KeyError:
            raise pickle.UnpicklingError(
                f"global {module}.{name} is forbidden in durable "
                f"payloads") from None


def restricted_loads(payload: bytes) -> Any:
    """Deserialize ``payload`` with the restricted unpickler.

    Raises:
        pickle.UnpicklingError: the payload references a global outside
            the allowlist (or is otherwise malformed pickle).
    """
    return _RestrictedUnpickler(io.BytesIO(payload)).load()
