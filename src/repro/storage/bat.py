"""The Binary Association Table (BAT), MonetDB's storage primitive.

A BAT is a two-column table of (head, tail) associations.  The head column
holds object identifiers (oids); the tail holds values of one atom type.
MonetDB stores relational columns as BATs with a *void* (virtual oid) head:
a dense sequence ``seqbase, seqbase+1, ...`` that occupies no memory.

This module implements the BAT operations the MAL ``algebra``/``bat``
modules need: selections, joins, projections, ordering, grouping and
aggregation — with the old (pre-2012) MonetDB semantics the paper's plans
use, e.g. ``algebra.select`` returns a BAT of qualifying (oid, value) pairs
and ``algebra.leftjoin(a, b)`` matches ``a``'s tail against ``b``'s head.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError, TypeMismatchError
from repro.storage.types import BIT, DBL, INT, LNG, OID, MalType, cast_value, nil

_OPS: dict = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class BAT:
    """An in-memory Binary Association Table.

    Args:
        tail_type: atom type of the tail column.
        values: initial tail values (cast to ``tail_type``; nil passes).
        head: explicit head oids, or None for a void head.
        hseqbase: seqbase of the void head (ignored when ``head`` given).

    The head is *void* when ``head is None``: the i-th association then has
    head oid ``hseqbase + i``.  Operations preserve voidness when they can,
    exactly like MonetDB, because void heads are what make positional
    lookups (fetch joins) O(1).
    """

    __slots__ = ("tail_type", "tail", "head", "hseqbase")

    def __init__(
        self,
        tail_type: MalType,
        values: Optional[Iterable[Any]] = None,
        head: Optional[Sequence[int]] = None,
        hseqbase: int = 0,
    ) -> None:
        self.tail_type = tail_type
        self.tail: List[Any] = (
            [cast_value(v, tail_type) for v in values] if values is not None else []
        )
        self.head: Optional[List[int]] = list(head) if head is not None else None
        self.hseqbase = hseqbase
        if self.head is not None and len(self.head) != len(self.tail):
            raise StorageError(
                f"head/tail length mismatch: {len(self.head)} vs {len(self.tail)}"
            )

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def count(self) -> int:
        """Number of associations (MAL ``aggr.count``)."""
        return len(self.tail)

    def __len__(self) -> int:
        return len(self.tail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "void" if self.is_void_head else "oid"
        return f"BAT[{kind},{self.tail_type.name}]#{len(self)}"

    @property
    def is_void_head(self) -> bool:
        """True when the head is a virtual dense oid sequence."""
        return self.head is None

    def head_at(self, index: int) -> int:
        """Head oid of the association at ``index``."""
        if self.head is None:
            return self.hseqbase + index
        return self.head[index]

    def heads(self) -> Iterator[int]:
        """Iterate over head oids in association order."""
        if self.head is None:
            return iter(range(self.hseqbase, self.hseqbase + len(self.tail)))
        return iter(self.head)

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate over (head oid, tail value) pairs."""
        return zip(self.heads(), self.tail)

    def append(self, value: Any) -> None:
        """Append one association with the next dense head oid."""
        if self.head is not None:
            self.head.append((self.head[-1] + 1) if self.head else self.hseqbase)
        self.tail.append(cast_value(value, self.tail_type))

    def extend(self, values: Iterable[Any]) -> None:
        """Append many tail values (see :meth:`append`)."""
        for value in values:
            self.append(value)

    def bytes(self) -> int:
        """Approximate memory footprint, for rss accounting in traces."""
        head_bytes = 0 if self.head is None else 8 * len(self.head)
        if self.tail_type.name == "str":
            tail_bytes = sum(8 + len(v) for v in self.tail if v is not nil)
            tail_bytes += 8 * sum(1 for v in self.tail if v is nil)
        else:
            tail_bytes = self.tail_type.width * len(self.tail)
        return head_bytes + tail_bytes

    def copy(self) -> "BAT":
        """Deep-enough copy (tails hold immutable atoms)."""
        out = BAT(self.tail_type, hseqbase=self.hseqbase)
        out.tail = list(self.tail)
        out.head = None if self.head is None else list(self.head)
        return out

    def _like(self, heads: Optional[List[int]], tail: List[Any],
              tail_type: Optional[MalType] = None, hseqbase: int = 0) -> "BAT":
        out = BAT(tail_type or self.tail_type, hseqbase=hseqbase)
        out.tail = tail
        out.head = heads
        return out

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------

    def select(self, low: Any, high: Any = "__unset__",
               include_low: bool = True, include_high: bool = True) -> "BAT":
        """Range/point selection (MAL ``algebra.select``).

        With one argument, selects associations whose tail equals ``low``.
        With two, selects tails in the (by default closed) interval
        ``[low, high]``; a nil bound means unbounded on that side.  nil
        tails never qualify.  Returns a BAT of qualifying (head oid, value)
        pairs with a materialised head.
        """
        if high == "__unset__":
            return self._filter(lambda v: v == low)
        low_ok: Callable[[Any], bool]
        if low is nil:
            low_ok = lambda v: True
        elif include_low:
            low_ok = lambda v: v >= low
        else:
            low_ok = lambda v: v > low
        if high is nil:
            high_ok: Callable[[Any], bool] = lambda v: True
        elif include_high:
            high_ok = lambda v: v <= high
        else:
            high_ok = lambda v: v < high
        return self._filter(lambda v: low_ok(v) and high_ok(v))

    def thetaselect(self, value: Any, op: str) -> "BAT":
        """Selection with a comparison operator (MAL ``algebra.thetaselect``)."""
        try:
            cmp = _OPS[op]
        except KeyError:
            raise StorageError(f"unknown theta operator {op!r}") from None
        return self._filter(lambda v: cmp(v, value))

    def likeselect(self, pattern: str) -> "BAT":
        """SQL LIKE selection over string tails (``%`` and ``_`` wildcards)."""
        import re

        if self.tail_type.name != "str":
            raise TypeMismatchError("likeselect requires a str tail")
        regex = re.compile(
            "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
            re.DOTALL,
        )
        return self._filter(lambda v: regex.match(v) is not None)

    def _filter(self, predicate: Callable[[Any], bool]) -> "BAT":
        heads: List[int] = []
        tail: List[Any] = []
        for oid, value in self.items():
            if value is nil:
                continue
            if predicate(value):
                heads.append(oid)
                tail.append(value)
        return self._like(heads, tail)

    # ------------------------------------------------------------------
    # joins and projections
    # ------------------------------------------------------------------

    def leftjoin(self, other: "BAT") -> "BAT":
        """``algebra.leftjoin``: match self's tail against other's head.

        Produces (self.head, other.tail) for every matching pair, keeping
        self's order.  When ``other`` has a void head this is a positional
        fetch; otherwise a hash join on other's head.  nil tails in self
        never match (oid nil semantics).
        """
        heads: List[int] = []
        tail: List[Any] = []
        if other.head is None:
            base, size = other.hseqbase, len(other.tail)
            for oid, value in self.items():
                if value is nil:
                    continue
                pos = int(value) - base
                if 0 <= pos < size:
                    heads.append(oid)
                    tail.append(other.tail[pos])
        else:
            index: dict = {}
            for pos, hoid in enumerate(other.head):
                index.setdefault(hoid, []).append(pos)
            for oid, value in self.items():
                if value is nil:
                    continue
                for pos in index.get(value, ()):
                    heads.append(oid)
                    tail.append(other.tail[pos])
        return self._like(heads, tail, tail_type=other.tail_type)

    def leftfetchjoin(self, other: "BAT") -> "BAT":
        """``algebra.leftfetchjoin``: positional fetch, errors on misses.

        Like :meth:`leftjoin` against a void-headed ``other``, but a tail
        oid outside ``other`` is an error rather than a dropped row — this
        is the projection step plans rely on to preserve cardinality.
        """
        heads: List[int] = []
        tail: List[Any] = []
        base = other.hseqbase if other.head is None else None
        index = None
        if other.head is not None:
            index = {hoid: pos for pos, hoid in enumerate(other.head)}
        for oid, value in self.items():
            if value is nil:
                heads.append(oid)
                tail.append(nil)
                continue
            if base is not None:
                pos = int(value) - base
                if not (0 <= pos < len(other.tail)):
                    raise StorageError(f"fetchjoin miss for oid {value}")
            else:
                try:
                    pos = index[value]  # type: ignore[index]
                except KeyError:
                    raise StorageError(f"fetchjoin miss for oid {value}") from None
            heads.append(oid)
            tail.append(other.tail[pos])
        return self._like(heads, tail, tail_type=other.tail_type)

    def join(self, other: "BAT") -> "BAT":
        """``algebra.join``: equi-join self.tail with other.head.

        Returns (self.head, other.tail) pairs for every match, without an
        order guarantee in MonetDB; here we keep self-major order, which is
        a legal refinement.
        """
        return self.leftjoin(other)

    def reverse(self) -> "BAT":
        """``bat.reverse``: swap head and tail columns.

        The resulting tail holds the old head oids (type oid); the head is
        materialised from the old tail.  Old MonetDB BAT heads may be of
        any atom type (value-keyed joins reverse a value column), so any
        non-nil tail is accepted as the new head.
        """
        new_tail = list(self.heads())
        new_head = []
        for value in self.tail:
            if value is nil:
                raise StorageError("cannot reverse a BAT with nil tails")
            new_head.append(value)
        return self._like(new_head, new_tail, tail_type=OID)

    def mirror(self) -> "BAT":
        """``bat.mirror``: (head, head) pairs — an identity over the head."""
        heads = list(self.heads())
        return self._like(list(heads), list(heads), tail_type=OID)

    def mark(self, base: int = 0) -> "BAT":
        """``algebra.markT``: renumber as a dense void head starting at base."""
        return self._like(None, list(self.tail), hseqbase=base)

    def project(self, value: Any, value_type: Optional[MalType] = None) -> "BAT":
        """``algebra.project``: constant tail with self's heads."""
        if value_type is None:
            from repro.storage.types import infer_type

            value_type = self.tail_type if value is nil else infer_type(value)
        heads = None if self.head is None else list(self.head)
        out = BAT(value_type, hseqbase=self.hseqbase)
        out.head = heads
        out.tail = [cast_value(value, value_type)] * len(self.tail)
        return out

    def slice_(self, first: int, last: int) -> "BAT":
        """``algebra.slice``: positions ``first..last`` inclusive."""
        first = max(first, 0)
        last = min(last, len(self.tail) - 1)
        if last < first:
            return self._like([], [])
        heads = [self.head_at(i) for i in range(first, last + 1)]
        return self._like(heads, self.tail[first : last + 1])

    def kdifference(self, other: "BAT") -> "BAT":
        """``algebra.kdifference``: keep associations whose head is absent
        from other's head column (anti-semijoin on heads)."""
        other_heads = set(other.heads())
        heads: List[int] = []
        tail: List[Any] = []
        for oid, value in self.items():
            if oid not in other_heads:
                heads.append(oid)
                tail.append(value)
        return self._like(heads, tail)

    def semijoin(self, other: "BAT") -> "BAT":
        """``algebra.semijoin``: keep associations whose head occurs in
        other's head column."""
        other_heads = set(other.heads())
        heads: List[int] = []
        tail: List[Any] = []
        for oid, value in self.items():
            if oid in other_heads:
                heads.append(oid)
                tail.append(value)
        return self._like(heads, tail)

    # ------------------------------------------------------------------
    # ordering and grouping
    # ------------------------------------------------------------------

    def sort(self, reverse: bool = False) -> "BAT":
        """``algebra.sortTail``: stable sort by tail value, nils first."""
        order = sorted(
            range(len(self.tail)),
            key=lambda i: (self.tail[i] is not nil, self.tail[i])
            if not reverse
            else (self.tail[i] is nil, _NegKey(self.tail[i])),
        )
        heads = [self.head_at(i) for i in order]
        tail = [self.tail[i] for i in order]
        return self._like(heads, tail)

    def group(self) -> Tuple["BAT", "BAT", "BAT"]:
        """``group.new``-style grouping on tail values.

        Returns (groups, extents, histogram):
          * groups: void head, tail = dense group id per input position;
          * extents: void head, tail = head oid of each group's first row;
          * histogram: void head, tail = group sizes.
        """
        mapping: dict = {}
        group_ids: List[int] = []
        extents: List[int] = []
        hist: List[int] = []
        for oid, value in self.items():
            key = ("\0nil",) if value is nil else value
            gid = mapping.get(key)
            if gid is None:
                gid = len(mapping)
                mapping[key] = gid
                extents.append(oid)
                hist.append(0)
            hist[gid] += 1
            group_ids.append(gid)
        groups = BAT(OID, group_ids, hseqbase=self.hseqbase)
        return groups, BAT(OID, extents), BAT(LNG, hist)

    def refine_group(self, groups: "BAT") -> Tuple["BAT", "BAT", "BAT"]:
        """Refine an existing grouping with this BAT's tail values
        (``group.derive``): rows agree iff old group id and value agree."""
        if len(groups) != len(self):
            raise StorageError("group refinement length mismatch")
        mapping: dict = {}
        group_ids: List[int] = []
        extents: List[int] = []
        hist: List[int] = []
        for (oid, value), gid_old in zip(self.items(), groups.tail):
            key = (gid_old, ("\0nil",) if value is nil else value)
            gid = mapping.get(key)
            if gid is None:
                gid = len(mapping)
                mapping[key] = gid
                extents.append(oid)
                hist.append(0)
            hist[gid] += 1
            group_ids.append(gid)
        out_groups = BAT(OID, group_ids, hseqbase=self.hseqbase)
        return out_groups, BAT(OID, extents), BAT(LNG, hist)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def aggregate(self, func: str) -> Any:
        """Scalar aggregate over non-nil tails (``aggr.sum`` etc.).

        ``count`` counts all associations (MonetDB counts nils too for
        ``count(*)``-style counts); the others skip nils and return nil on
        an all-nil/empty input.
        """
        if func == "count":
            return len(self.tail)
        values = [v for v in self.tail if v is not nil]
        if not values:
            return nil
        if func == "sum":
            return sum(values)
        if func == "min":
            return min(values)
        if func == "max":
            return max(values)
        if func == "avg":
            return float(sum(values)) / len(values)
        raise StorageError(f"unknown aggregate {func!r}")

    def grouped_aggregate(self, groups: "BAT", ngroups: int, func: str) -> "BAT":
        """Per-group aggregate; returns one tail value per group id."""
        if len(groups) != len(self):
            raise StorageError("grouped aggregate length mismatch")
        buckets: List[List[Any]] = [[] for _ in range(ngroups)]
        counts = [0] * ngroups
        for value, gid in zip(self.tail, groups.tail):
            gid = int(gid)
            counts[gid] += 1
            if value is not nil:
                buckets[gid].append(value)
        out_type = self.tail_type
        results: List[Any] = []
        if func == "count":
            results = list(counts)
            out_type = LNG
        else:
            for bucket in buckets:
                if not bucket:
                    results.append(nil)
                elif func == "sum":
                    results.append(sum(bucket))
                elif func == "min":
                    results.append(min(bucket))
                elif func == "max":
                    results.append(max(bucket))
                elif func == "avg":
                    results.append(float(sum(bucket)) / len(bucket))
                else:
                    raise StorageError(f"unknown aggregate {func!r}")
            if func == "avg":
                out_type = DBL
        out = BAT(out_type)
        out.tail = results
        return out

    # ------------------------------------------------------------------
    # elementwise calculation (MAL batcalc)
    # ------------------------------------------------------------------

    def calc(self, other: "BAT", op: str, out_type: Optional[MalType] = None) -> "BAT":
        """Elementwise binary op with another BAT of equal length."""
        if len(other) != len(self):
            raise StorageError("batcalc length mismatch")
        fn = _calc_fn(op)
        tail = [
            nil if (a is nil or b is nil) else fn(a, b)
            for a, b in zip(self.tail, other.tail)
        ]
        return self._calc_out(tail, op, out_type, other.tail_type)

    def calc_const(self, value: Any, op: str, swapped: bool = False,
                   out_type: Optional[MalType] = None) -> "BAT":
        """Elementwise binary op against a constant."""
        fn = _calc_fn(op)
        if value is nil:
            tail: List[Any] = [nil] * len(self.tail)
        elif swapped:
            tail = [nil if v is nil else fn(value, v) for v in self.tail]
        else:
            tail = [nil if v is nil else fn(v, value) for v in self.tail]
        from repro.storage.types import infer_type

        other_type = self.tail_type if value is nil else infer_type(value)
        return self._calc_out(tail, op, out_type, other_type)

    def _calc_out(self, tail: List[Any], op: str,
                  out_type: Optional[MalType], other_type: MalType) -> "BAT":
        if out_type is None:
            if op in _OPS or op in ("and", "or"):
                out_type = BIT
            elif op == "/":
                out_type = DBL
            else:
                from repro.storage.types import promote

                try:
                    out_type = promote(self.tail_type, other_type)
                except TypeMismatchError:
                    out_type = self.tail_type
        heads = None if self.head is None else list(self.head)
        out = BAT(out_type, hseqbase=self.hseqbase)
        out.head = heads
        out.tail = [cast_value(v, out_type) for v in tail]
        return out


class _NegKey:
    """Ordering adapter that inverts comparisons, for descending sorts of
    values that may not support unary minus (e.g. strings, dates)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_NegKey") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NegKey) and other.value == self.value


def _calc_fn(op: str) -> Callable[[Any, Any], Any]:
    if op in _OPS:
        return _OPS[op]
    table: dict = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if b else nil,
        "%": lambda a, b: a % b if b else nil,
        "and": lambda a, b: a and b,
        "or": lambda a, b: a or b,
    }
    try:
        return table[op]
    except KeyError:
        raise StorageError(f"unknown calc operator {op!r}") from None
