"""The Binary Association Table (BAT), MonetDB's storage primitive.

A BAT is a two-column table of (head, tail) associations.  The head column
holds object identifiers (oids); the tail holds values of one atom type.
MonetDB stores relational columns as BATs with a *void* (virtual oid) head:
a dense sequence ``seqbase, seqbase+1, ...`` that occupies no memory.

This module implements the BAT operations the MAL ``algebra``/``bat``
modules need: selections, joins, projections, ordering, grouping and
aggregation — with the old (pre-2012) MonetDB semantics the paper's plans
use, e.g. ``algebra.select`` returns a BAT of qualifying (oid, value) pairs
and ``algebra.leftjoin(a, b)`` matches ``a``'s tail against ``b``'s head.

The kernels are written as *bulk* operations: each one makes a small,
constant number of passes over its input using fused list comprehensions,
``map`` over :mod:`operator` functions, and C-level slicing — rather than
dispatching a Python lambda per element.  Three memoized structures back
the hot paths, all invalidated by :meth:`BAT.append`/:meth:`BAT.extend`
(and double-guarded by the BAT's current length):

* a hash index on non-void heads (``{head oid: position}``), shared by
  ``leftfetchjoin``/``semijoin``/``kdifference``;
* a multi-map variant (``{head oid: [positions]}``) for ``leftjoin``,
  which must produce every match of a duplicated head;
* the :meth:`BAT.bytes` footprint, which per-instruction RSS accounting
  recomputes for every live BAT at every instruction boundary.

``tests/test_kernel_parity.py`` checks every kernel here against the
per-row reference implementations in :mod:`repro.storage.naive`.
"""

from __future__ import annotations

import operator
import re
from bisect import bisect_left, bisect_right
from collections import Counter
from dataclasses import dataclass
from itertools import repeat

from repro.metrics.families import (
    ADAPTIVE_INDEX_BUILDS, ADAPTIVE_INDEX_DROPS,
)
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError, TypeMismatchError
from repro.storage.types import BIT, DBL, LNG, OID, MalType, cast_value, nil

_OPS: dict = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

#: tail types whose values are plain Python ints, safe for positional
#: arithmetic without a per-element ``int()`` cast.
_INT_TAILS = frozenset(("int", "lng", "oid"))

#: numeric atom names for which arithmetic results already match the
#: promoted output type, letting ``_calc_out`` skip its cast pass.
_NUMERIC_TAILS = frozenset(("int", "lng", "flt", "dbl"))


# --------------------------------------------------------------------------
# fused selection kernels (module level: no closure rebuild per call)
#
# Plain fused comprehensions: on CPython 3.11's specializing interpreter
# these beat every ``map``/``itertools.compress`` formulation measured —
# comprehension bytecode is inlined and COMPARE_OP is specialized, while
# bound-method dispatch through ``map`` pays a call per element.
# --------------------------------------------------------------------------

def _positions_eq(tail: List[Any], value: Any) -> List[int]:
    return [i for i, v in enumerate(tail) if v is not None and v == value]


def _positions_ne(tail: List[Any], value: Any) -> List[int]:
    return [i for i, v in enumerate(tail) if v is not None and v != value]


def _positions_lt(tail: List[Any], value: Any) -> List[int]:
    return [i for i, v in enumerate(tail) if v is not None and v < value]


def _positions_le(tail: List[Any], value: Any) -> List[int]:
    return [i for i, v in enumerate(tail) if v is not None and v <= value]


def _positions_gt(tail: List[Any], value: Any) -> List[int]:
    return [i for i, v in enumerate(tail) if v is not None and v > value]


def _positions_ge(tail: List[Any], value: Any) -> List[int]:
    return [i for i, v in enumerate(tail) if v is not None and v >= value]


_THETA_KERNELS: dict = {
    "==": _positions_eq,
    "!=": _positions_ne,
    "<": _positions_lt,
    "<=": _positions_le,
    ">": _positions_gt,
    ">=": _positions_ge,
}


def _positions_range(tail: List[Any], low: Any, high: Any,
                     include_low: bool, include_high: bool) -> List[int]:
    """Qualifying positions for a range select; nil bounds are open ends."""
    if low is None and high is None:
        return [i for i, v in enumerate(tail) if v is not None]
    if low is None:
        return (_positions_le if include_high else _positions_lt)(tail, high)
    if high is None:
        return (_positions_ge if include_low else _positions_gt)(tail, low)
    if include_low and include_high:
        return [i for i, v in enumerate(tail)
                if v is not None and low <= v <= high]
    if include_low:
        return [i for i, v in enumerate(tail)
                if v is not None and low <= v < high]
    if include_high:
        return [i for i, v in enumerate(tail)
                if v is not None and low < v <= high]
    return [i for i, v in enumerate(tail)
            if v is not None and low < v < high]


#: BATs below this row count answer range selects by scanning; above it
#: they build (and memoize) a sort-order index and answer by bisection.
#: Default for :class:`IndexPolicy.min_rows`; kept as a module constant
#: for importers, but the live threshold is the configured policy's.
ORDER_INDEX_MIN_ROWS = 512


@dataclass
class IndexPolicy:
    """Tunable heuristics governing the memoized sort-order indexes.

    The static half (``min_rows``, the scan-fallback ratio) used to be
    hard-wired module constants; the adaptive half closes the feedback
    loop: BATs below ``min_rows`` whose observed access mix is
    range-select-heavy get their index built *eagerly*, and an index
    whose hit-rate over a decision window falls below ``hit_floor`` is
    dropped (and stays off until the BAT next mutates).

    Attributes:
        min_rows: classic build-on-first-touch threshold.
        scan_fallback_num: a bisected run of k rows falls back to the
            scan kernel when ``k * scan_fallback_num > rows`` — the
            default 4 is the historical >1/4-selectivity rule; 0
            disables the fallback entirely.
        adaptive_min_rows: floor below which eager builds never happen
            (tiny BATs scan faster than any index pays back).
        eager_after: range selects observed on a sub-``min_rows`` BAT
            before its index is built eagerly.
        hit_floor: minimum fraction of index-answered range selects
            over a window; below it the index is dropped.
        window: accesses per hit-rate decision window.
    """

    min_rows: int = ORDER_INDEX_MIN_ROWS
    scan_fallback_num: int = 4
    adaptive_min_rows: int = 128
    eager_after: int = 4
    hit_floor: float = 0.1
    window: int = 32


#: The process-wide policy; replaced via :func:`configure_index_policy`
#: (the ``serve --order-index-min-rows`` flag lands here).
_INDEX_POLICY = IndexPolicy()


def index_policy() -> IndexPolicy:
    """The index policy currently in force."""
    return _INDEX_POLICY


def configure_index_policy(policy: Optional[IndexPolicy] = None,
                           **overrides) -> IndexPolicy:
    """Install (or derive-and-install) the process-wide index policy.

    Pass a full :class:`IndexPolicy`, or keyword overrides applied to
    the defaults (``configure_index_policy(min_rows=64)``).  Returns the
    installed policy.  Tests that touch this must restore the previous
    policy; the engine itself only calls it from CLI startup.
    """
    global _INDEX_POLICY
    if policy is None:
        policy = IndexPolicy(**overrides)
    elif overrides:
        raise ValueError("pass a policy or overrides, not both")
    if policy.min_rows < 1 or policy.adaptive_min_rows < 1:
        raise ValueError("index policy thresholds must be >= 1")
    if policy.scan_fallback_num < 0:
        raise ValueError("scan_fallback_num must be >= 0")
    if not 0.0 <= policy.hit_floor <= 1.0:
        raise ValueError("hit_floor must be in [0, 1]")
    if policy.window < 1 or policy.eager_after < 1:
        raise ValueError("window and eager_after must be >= 1")
    _INDEX_POLICY = policy
    return policy


class BAT:
    """An in-memory Binary Association Table.

    Args:
        tail_type: atom type of the tail column.
        values: initial tail values (cast to ``tail_type``; nil passes).
        head: explicit head oids, or None for a void head.
        hseqbase: seqbase of the void head (ignored when ``head`` given).

    The head is *void* when ``head is None``: the i-th association then has
    head oid ``hseqbase + i``.  Operations preserve voidness when they can,
    exactly like MonetDB, because void heads are what make positional
    lookups (fetch joins) O(1).
    """

    __slots__ = ("tail_type", "tail", "head", "hseqbase", "_bytes_cache",
                 "_index_cache", "_multimap_cache", "_order_cache",
                 "_ship_cache", "_range_selects", "_order_hits",
                 "_order_misses", "_order_disabled")

    def __init__(
        self,
        tail_type: MalType,
        values: Optional[Iterable[Any]] = None,
        head: Optional[Sequence[int]] = None,
        hseqbase: int = 0,
    ) -> None:
        self.tail_type = tail_type
        self.tail: List[Any] = (
            [cast_value(v, tail_type) for v in values] if values is not None else []
        )
        self.head: Optional[List[int]] = list(head) if head is not None else None
        self.hseqbase = hseqbase
        self._bytes_cache: Optional[Tuple[Any, int]] = None
        self._index_cache: Optional[Tuple[int, dict]] = None
        self._multimap_cache: Optional[Tuple[int, dict]] = None
        self._order_cache: Optional[Tuple[int, List[int], List[Any]]] = None
        self._ship_cache: Optional[Tuple[int, bytes]] = None
        # adaptive index accounting: range selects seen, order-index
        # hits/misses in the current decision window, and whether the
        # policy has disabled the index until the next mutation
        self._range_selects = 0
        self._order_hits = 0
        self._order_misses = 0
        self._order_disabled = False
        if self.head is not None and len(self.head) != len(self.tail):
            raise StorageError(
                f"head/tail length mismatch: {len(self.head)} vs {len(self.tail)}"
            )

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def count(self) -> int:
        """Number of associations (MAL ``aggr.count``)."""
        return len(self.tail)

    def __len__(self) -> int:
        return len(self.tail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "void" if self.is_void_head else "oid"
        return f"BAT[{kind},{self.tail_type.name}]#{len(self)}"

    @property
    def is_void_head(self) -> bool:
        """True when the head is a virtual dense oid sequence."""
        return self.head is None

    def head_at(self, index: int) -> int:
        """Head oid of the association at ``index``."""
        if self.head is None:
            return self.hseqbase + index
        return self.head[index]

    def heads(self) -> Iterator[int]:
        """Iterate over head oids in association order."""
        if self.head is None:
            return iter(range(self.hseqbase, self.hseqbase + len(self.tail)))
        return iter(self.head)

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate over (head oid, tail value) pairs."""
        return zip(self.heads(), self.tail)

    def append(self, value: Any) -> None:
        """Append one association with the next dense head oid."""
        if self.head is not None:
            self.head.append((self.head[-1] + 1) if self.head else self.hseqbase)
        self.tail.append(cast_value(value, self.tail_type))
        self._invalidate_caches()

    def extend(self, values: Iterable[Any]) -> None:
        """Append many tail values in one bulk pass (see :meth:`append`).

        One cast comprehension over the input, then C-level ``extend`` of
        the tail (and, for materialised heads, of the dense head
        continuation).  A cast error therefore rejects the whole batch
        instead of leaving a partial append behind.
        """
        caster = self.tail_type.caster
        self._extend_raw([v if v is None else caster(v) for v in values])

    def _extend_raw(self, cast_values: List[Any]) -> None:
        """Extend with values already in canonical form (no cast pass).

        Bulk loaders that cast a whole batch up front (for all-or-nothing
        semantics across several columns) use this to avoid re-casting.
        """
        if self.head is not None:
            start = (self.head[-1] + 1) if self.head else self.hseqbase
            self.head.extend(range(start, start + len(cast_values)))
        self.tail.extend(cast_values)
        self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        """Drop memoized footprint/index state after a mutation.

        Callers that patch ``tail`` in place (same length, new values)
        must invoke this by hand — the length guards on the caches
        cannot see such edits.
        """
        self._bytes_cache = None
        self._index_cache = None
        self._multimap_cache = None
        self._order_cache = None
        self._ship_cache = None
        # a mutation resets the adaptive accounting: the data changed,
        # so a dropped index gets a fresh chance to prove itself
        self._range_selects = 0
        self._order_hits = 0
        self._order_misses = 0
        self._order_disabled = False

    def bytes(self) -> int:
        """Approximate memory footprint, for rss accounting in traces.

        Memoized: RSS accounting recomputes this for every live BAT at
        every instruction boundary, and the str branch is O(n).  The
        cache is invalidated by :meth:`append`/:meth:`extend` and
        guarded by the current length as a backstop.
        """
        tail = self.tail
        key = (len(tail), self.head is None)
        cached = self._bytes_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        head_bytes = 0 if self.head is None else 8 * len(tail)
        if self.tail_type.name == "str":
            tail_bytes = sum(8 if v is None else 8 + len(v) for v in tail)
        else:
            tail_bytes = self.tail_type.width * len(tail)
        total = head_bytes + tail_bytes
        self._bytes_cache = (key, total)
        return total

    def to_ship_bytes(self) -> bytes:
        """Serialized form for shipping to a partition worker process.

        Memoized like :meth:`bytes`: a column shipped to several workers
        (an unpartitioned join side, a partition slice re-run under the
        plan cache) is pickled once and the payload reused.  Invalidated
        by :meth:`append`/:meth:`extend` and guarded by the current
        length as a backstop.
        """
        import pickle

        cached = self._ship_cache
        if cached is not None and cached[0] == len(self.tail):
            return cached[1]
        payload = pickle.dumps(
            (self.tail_type.name, self.tail, self.head, self.hseqbase),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._ship_cache = (len(self.tail), payload)
        return payload

    @classmethod
    def from_ship_bytes(cls, payload: bytes) -> "BAT":
        """Rebuild a BAT from :meth:`to_ship_bytes` output.

        Decodes with the restricted unpickler (ship payloads hold only
        scalars, containers, and ``datetime.date``), so a corrupted or
        hostile payload fails with a typed :class:`StorageError`
        instead of executing arbitrary reduces.
        """
        from repro.storage.types import type_by_name
        from repro.storage.unpickle import restricted_loads

        try:
            type_name, tail, head, hseqbase = restricted_loads(payload)
        except StorageError:
            raise
        except Exception as exc:
            raise StorageError(
                f"undecodable ship payload: {exc}") from None
        out = cls(type_by_name(type_name), hseqbase=hseqbase)
        out.tail = tail
        out.head = head
        return out

    def copy(self) -> "BAT":
        """Deep-enough copy (tails hold immutable atoms)."""
        out = BAT(self.tail_type, hseqbase=self.hseqbase)
        out.tail = list(self.tail)
        out.head = None if self.head is None else list(self.head)
        return out

    def _like(self, heads: Optional[List[int]], tail: List[Any],
              tail_type: Optional[MalType] = None, hseqbase: int = 0) -> "BAT":
        out = BAT(tail_type or self.tail_type, hseqbase=hseqbase)
        out.tail = tail
        out.head = heads
        return out

    def _take(self, positions: List[int]) -> "BAT":
        """Gather the associations at ``positions`` (order preserved)."""
        tail = self.tail
        if self.head is None:
            base = self.hseqbase
            heads = [base + i for i in positions] if base else positions
        else:
            shead = self.head
            heads = [shead[i] for i in positions]
        return self._like(heads, [tail[i] for i in positions])

    # ------------------------------------------------------------------
    # memoized head indexes
    # ------------------------------------------------------------------

    def _head_index(self) -> dict:
        """Memoized ``{head oid: position}`` over a materialised head.

        Duplicate heads keep the *last* position, matching the index
        ``leftfetchjoin`` historically built per call.  ``semijoin`` and
        ``kdifference`` use only the key set.
        """
        head = self.head
        cached = self._index_cache
        if cached is not None and cached[0] == len(head):
            return cached[1]
        index = {hoid: pos for pos, hoid in enumerate(head)}
        self._index_cache = (len(head), index)
        return index

    def _head_multimap(self) -> dict:
        """Memoized ``{head oid: [positions]}`` over a materialised head,
        in head order — ``leftjoin`` emits every match of a duplicate."""
        head = self.head
        cached = self._multimap_cache
        if cached is not None and cached[0] == len(head):
            return cached[1]
        index: dict = {}
        setdefault = index.setdefault
        for pos, hoid in enumerate(head):
            setdefault(hoid, []).append(pos)
        self._multimap_cache = (len(head), index)
        return index

    def _tail_order(self) -> Optional[Tuple[List[int], List[Any]]]:
        """Memoized sort-order index: (positions of non-nil tails sorted
        by value, the values in that order).

        Built lazily on the first range selection against a BAT of at
        least ``policy.min_rows`` rows — or *eagerly* on smaller BATs
        (down to ``policy.adaptive_min_rows``) once the observed access
        mix shows ``policy.eager_after`` range selects.  BATs whose
        tails refuse ordered comparison, and BATs whose index the
        policy dropped for a poor hit-rate, answer by scanning.
        Invalidated like every memoized structure by append/extend.
        """
        if self._order_disabled:
            return None
        policy = _INDEX_POLICY
        rows = len(self.tail)
        if rows < policy.min_rows:
            if rows < policy.adaptive_min_rows:
                return None
            if self._order_cache is None and \
                    self._range_selects < policy.eager_after:
                return None
            trigger = "eager"
        else:
            trigger = "threshold"
        cached = self._order_cache
        if cached is not None and cached[0] == rows:
            return cached[1], cached[2]
        tail = self.tail
        positions = ([i for i, v in enumerate(tail) if v is not None]
                     if None in tail else list(range(len(tail))))
        try:
            positions.sort(key=tail.__getitem__)
        except TypeError:
            return None
        values = [tail[i] for i in positions]
        self._order_cache = (rows, positions, values)
        ADAPTIVE_INDEX_BUILDS.labels(trigger=trigger).inc()
        return positions, values

    def _order_outcome(self, hit: bool) -> None:
        """Fold one index consult into the hit-rate window; drop the
        index when a full window stays below the policy floor."""
        if hit:
            self._order_hits += 1
        else:
            self._order_misses += 1
        policy = _INDEX_POLICY
        decided = self._order_hits + self._order_misses
        if decided < policy.window:
            return
        if self._order_hits < policy.hit_floor * decided:
            self._order_cache = None
            self._order_disabled = True
            ADAPTIVE_INDEX_DROPS.inc()
        self._order_hits = 0
        self._order_misses = 0

    def _select_by_order(self, low: Any, high: Any, include_low: bool,
                         include_high: bool) -> Optional["BAT"]:
        """Answer a range select by bisecting the sort-order index.

        The qualifying rows form one contiguous run of the index; slicing
        it and re-sorting the (always int) positions reproduces the scan
        kernel's output exactly.  Returns None when no index applies.
        """
        self._range_selects += 1
        index = self._tail_order()
        if index is None:
            return None
        order, values = index
        if low is None:
            first = 0
        elif include_low:
            first = bisect_left(values, low)
        else:
            first = bisect_right(values, low)
        if high is None:
            last = len(values)
        elif include_high:
            last = bisect_right(values, high)
        else:
            last = bisect_left(values, high)
        if last <= first:
            self._order_outcome(hit=True)
            return self._take([])
        if _INDEX_POLICY.scan_fallback_num and \
                (last - first) * _INDEX_POLICY.scan_fallback_num > \
                len(self.tail):
            # wide runs: re-sorting k positions costs more than one scan
            self._order_outcome(hit=False)
            return None
        self._order_outcome(hit=True)
        return self._take(sorted(order[first:last]))

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------

    def select(self, low: Any, high: Any = "__unset__",
               include_low: bool = True, include_high: bool = True) -> "BAT":
        """Range/point selection (MAL ``algebra.select``).

        With one argument, selects associations whose tail equals ``low``.
        With two, selects tails in the (by default closed) interval
        ``[low, high]``; a nil bound means unbounded on that side.  nil
        tails never qualify.  Returns a BAT of qualifying (head oid, value)
        pairs with a materialised head.
        """
        if high == "__unset__":
            indexed = self._select_by_order(low, low, True, True)
            if indexed is not None:
                return indexed
            return self._take(_positions_eq(self.tail, low))
        indexed = self._select_by_order(low, high, include_low, include_high)
        if indexed is not None:
            return indexed
        return self._take(_positions_range(self.tail, low, high,
                                           include_low, include_high))

    def thetaselect(self, value: Any, op: str) -> "BAT":
        """Selection with a comparison operator (MAL ``algebra.thetaselect``)."""
        try:
            kernel = _THETA_KERNELS[op]
        except KeyError:
            raise StorageError(f"unknown theta operator {op!r}") from None
        if op != "!=":  # every op but != is a half-open/point range
            bounds = {"==": (value, value, True, True),
                      "<": (None, value, True, False),
                      "<=": (None, value, True, True),
                      ">": (value, None, False, True),
                      ">=": (value, None, True, True)}[op]
            indexed = self._select_by_order(*bounds)
            if indexed is not None:
                return indexed
        return self._take(kernel(self.tail, value))

    def likeselect(self, pattern: str) -> "BAT":
        """SQL LIKE selection over string tails (``%`` and ``_`` wildcards)."""
        if self.tail_type.name != "str":
            raise TypeMismatchError("likeselect requires a str tail")
        match = re.compile(
            "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
            re.DOTALL,
        ).match
        return self._take([i for i, v in enumerate(self.tail)
                           if v is not None and match(v) is not None])

    def _filter(self, predicate: Callable[[Any], bool]) -> "BAT":
        return self._take([i for i, v in enumerate(self.tail)
                           if v is not None and predicate(v)])

    # ------------------------------------------------------------------
    # joins and projections
    # ------------------------------------------------------------------

    def leftjoin(self, other: "BAT") -> "BAT":
        """``algebra.leftjoin``: match self's tail against other's head.

        Produces (self.head, other.tail) for every matching pair, keeping
        self's order.  When ``other`` has a void head this is a positional
        fetch — and when self's tail is an int-typed, nil-free column whose
        min/max land inside ``other`` (one C-level prescan), the whole join
        collapses to a single gather comprehension.  Otherwise a hash join
        runs against other's memoized head multi-map.  nil tails in self
        never match (oid nil semantics).
        """
        stail = self.tail
        heads: List[int]
        tail: List[Any]
        if other.head is None:
            base, size = other.hseqbase, len(other.tail)
            otail = other.tail
            if stail and base == 0 and self.tail_type.name == "oid":
                # oids are non-negative by construction, so a blind
                # gather is safe: a miss raises IndexError, a nil raises
                # TypeError, and either falls back to the per-row path
                try:
                    tail = [otail[v] for v in stail]
                except (IndexError, TypeError):
                    tail = None
                if tail is not None:
                    if self.head is None:
                        heads = list(range(self.hseqbase,
                                           self.hseqbase + len(stail)))
                    else:
                        heads = list(self.head)
                    return self._like(heads, tail, tail_type=other.tail_type)
            elif (stail and self.tail_type.name in _INT_TAILS
                    and None not in stail):
                if min(stail) >= base and max(stail) - base < size:
                    # every oid hits: pure positional gather, dense heads
                    tail = ([otail[v - base] for v in stail] if base
                            else [otail[v] for v in stail])
                    if self.head is None:
                        heads = list(range(self.hseqbase,
                                           self.hseqbase + len(stail)))
                    else:
                        heads = list(self.head)
                    return self._like(heads, tail, tail_type=other.tail_type)
            heads, tail = [], []
            add_head, add_tail = heads.append, tail.append
            for oid, value in self.items():
                if value is None:
                    continue
                pos = int(value) - base
                if 0 <= pos < size:
                    add_head(oid)
                    add_tail(otail[pos])
        else:
            positions_of = other._head_multimap().get
            otail = other.tail
            heads, tail = [], []
            add_head, add_tail = heads.append, tail.append
            for oid, value in self.items():
                if value is None:
                    continue
                for pos in positions_of(value, ()):
                    add_head(oid)
                    add_tail(otail[pos])
        return self._like(heads, tail, tail_type=other.tail_type)

    def leftfetchjoin(self, other: "BAT") -> "BAT":
        """``algebra.leftfetchjoin``: positional fetch, errors on misses.

        Like :meth:`leftjoin` against a void-headed ``other``, but a tail
        oid outside ``other`` is an error rather than a dropped row — this
        is the projection step plans rely on to preserve cardinality.
        Nil-free int-typed inputs take the same prescan-then-gather fast
        path as :meth:`leftjoin`; a failed prescan means a guaranteed miss,
        reported by the per-row path.
        """
        stail = self.tail
        tail: Optional[List[Any]] = None
        if other.head is None:
            base, size = other.hseqbase, len(other.tail)
            otail = other.tail
            if stail and base == 0 and self.tail_type.name == "oid":
                # blind gather (see leftjoin): misses/nils fall back
                try:
                    tail = [otail[v] for v in stail]
                except (IndexError, TypeError):
                    tail = None
            elif (stail and self.tail_type.name in _INT_TAILS
                    and None not in stail
                    and min(stail) >= base and max(stail) - base < size):
                tail = ([otail[v - base] for v in stail] if base
                        else [otail[v] for v in stail])
            if tail is None:
                tail = []
                add_tail = tail.append
                for value in stail:
                    if value is None:
                        add_tail(None)
                        continue
                    pos = int(value) - base
                    if not (0 <= pos < size):
                        raise StorageError(f"fetchjoin miss for oid {value}")
                    add_tail(otail[pos])
        else:
            position_of = other._head_index()
            otail = other.tail
            tail = []
            add_tail = tail.append
            for value in stail:
                if value is None:
                    add_tail(None)
                    continue
                try:
                    pos = position_of[value]
                except KeyError:
                    raise StorageError(
                        f"fetchjoin miss for oid {value}") from None
                add_tail(otail[pos])
        if self.head is None:
            heads = list(range(self.hseqbase, self.hseqbase + len(stail)))
        else:
            heads = list(self.head)
        return self._like(heads, tail, tail_type=other.tail_type)

    def join(self, other: "BAT") -> "BAT":
        """``algebra.join``: equi-join self.tail with other.head.

        Returns (self.head, other.tail) pairs for every match, without an
        order guarantee in MonetDB; here we keep self-major order, which is
        a legal refinement.
        """
        return self.leftjoin(other)

    def reverse(self) -> "BAT":
        """``bat.reverse``: swap head and tail columns.

        The resulting tail holds the old head oids (type oid); the head is
        materialised from the old tail.  Old MonetDB BAT heads may be of
        any atom type (value-keyed joins reverse a value column), so any
        non-nil tail is accepted as the new head.
        """
        if None in self.tail:
            raise StorageError("cannot reverse a BAT with nil tails")
        return self._like(list(self.tail), list(self.heads()), tail_type=OID)

    def mirror(self) -> "BAT":
        """``bat.mirror``: (head, head) pairs — an identity over the head."""
        heads = list(self.heads())
        return self._like(list(heads), heads, tail_type=OID)

    def mark(self, base: int = 0) -> "BAT":
        """``algebra.markT``: renumber as a dense void head starting at base."""
        return self._like(None, list(self.tail), hseqbase=base)

    def project(self, value: Any, value_type: Optional[MalType] = None) -> "BAT":
        """``algebra.project``: constant tail with self's heads."""
        if value_type is None:
            from repro.storage.types import infer_type

            value_type = self.tail_type if value is nil else infer_type(value)
        heads = None if self.head is None else list(self.head)
        out = BAT(value_type, hseqbase=self.hseqbase)
        out.head = heads
        out.tail = [cast_value(value, value_type)] * len(self.tail)
        return out

    def slice_(self, first: int, last: int) -> "BAT":
        """``algebra.slice``: positions ``first..last`` inclusive."""
        first = max(first, 0)
        last = min(last, len(self.tail) - 1)
        if last < first:
            return self._like([], [])
        if self.head is None:
            heads = list(range(self.hseqbase + first,
                               self.hseqbase + last + 1))
        else:
            heads = self.head[first:last + 1]
        return self._like(heads, self.tail[first:last + 1])

    def kdifference(self, other: "BAT") -> "BAT":
        """``algebra.kdifference``: keep associations whose head is absent
        from other's head column (anti-semijoin on heads).

        Void-headed ``other`` reduces membership to range arithmetic;
        void-on-void is two C-level slices.  Materialised others test
        against the memoized head index.
        """
        if other.head is None:
            lo = other.hseqbase
            hi = lo + len(other.tail)
            if self.head is None:
                base, n = self.hseqbase, len(self.tail)
                left_end = min(max(lo, base), base + n)
                right_start = max(min(hi, base + n), base)
                heads = (list(range(base, left_end))
                         + list(range(right_start, base + n)))
                tail = (self.tail[:left_end - base]
                        + self.tail[right_start - base:])
                return self._like(heads, tail)
            shead = self.head
            return self._take([i for i, h in enumerate(shead)
                               if not lo <= h < hi])
        index = other._head_index()
        if self.head is None:
            base = self.hseqbase
            return self._take([i for i in range(len(self.tail))
                               if base + i not in index])
        shead = self.head
        return self._take([i for i, h in enumerate(shead) if h not in index])

    def semijoin(self, other: "BAT") -> "BAT":
        """``algebra.semijoin``: keep associations whose head occurs in
        other's head column.  Same fast paths as :meth:`kdifference`."""
        if other.head is None:
            lo = other.hseqbase
            hi = lo + len(other.tail)
            if self.head is None:
                base, n = self.hseqbase, len(self.tail)
                start = max(lo, base)
                end = min(hi, base + n)
                if end <= start:
                    return self._like([], [])
                return self._like(list(range(start, end)),
                                  self.tail[start - base:end - base])
            shead = self.head
            return self._take([i for i, h in enumerate(shead)
                               if lo <= h < hi])
        index = other._head_index()
        if self.head is None:
            base = self.hseqbase
            return self._take([i for i in range(len(self.tail))
                               if base + i in index])
        shead = self.head
        return self._take([i for i, h in enumerate(shead) if h in index])

    # ------------------------------------------------------------------
    # ordering and grouping
    # ------------------------------------------------------------------

    def sort(self, reverse: bool = False) -> "BAT":
        """``algebra.sortTail``: stable sort by tail value.

        Nils sort first ascending and last descending; ties keep their
        original order.  Nil-free inputs sort positions directly with the
        tail's own ``__getitem__`` as the key — no per-element wrapper.
        """
        tail = self.tail
        if None in tail:
            non_nil = [i for i, v in enumerate(tail) if v is not None]
            nils = [i for i, v in enumerate(tail) if v is None]
            non_nil.sort(key=tail.__getitem__, reverse=reverse)
            order = non_nil + nils if reverse else nils + non_nil
        else:
            order = sorted(range(len(tail)), key=tail.__getitem__,
                           reverse=reverse)
        return self._take(order)

    def group(self) -> Tuple["BAT", "BAT", "BAT"]:
        """``group.new``-style grouping on tail values.

        Returns (groups, extents, histogram):
          * groups: void head, tail = dense group id per input position;
          * extents: void head, tail = head oid of each group's first row;
          * histogram: void head, tail = group sizes.
        """
        # One fused pass assigns dense ids in first-appearance order (nil
        # is a hashable dict key like any atom, so no wrapping needed).
        # Extents exploit that first occurrences are position-ordered:
        # group g first appears after group g-1, so chained C-level
        # ``list.index`` calls cost one effective pass in total.
        tail = self.tail
        mapping: dict = {}
        assign = mapping.setdefault
        group_ids = [assign(v, len(mapping)) for v in tail]
        extents: List[int] = []
        head = self.head
        base = self.hseqbase
        position = 0
        for gid in range(len(mapping)):
            position = group_ids.index(gid, position)
            extents.append(base + position if head is None
                           else head[position])
        counted = Counter(group_ids)
        hist = [counted[g] for g in range(len(mapping))]
        groups = self._like(None, group_ids, tail_type=OID,
                            hseqbase=self.hseqbase)
        return groups, BAT(OID, extents), BAT(LNG, hist)

    def refine_group(self, groups: "BAT") -> Tuple["BAT", "BAT", "BAT"]:
        """Refine an existing grouping with this BAT's tail values
        (``group.derive``): rows agree iff old group id and value agree."""
        if len(groups) != len(self):
            raise StorageError("group refinement length mismatch")
        mapping: dict = {}
        group_ids: List[int] = []
        extents: List[int] = []
        hist: List[int] = []
        lookup = mapping.get
        add_gid = group_ids.append
        head = self.head
        base = self.hseqbase
        for position, (value, gid_old) in enumerate(zip(self.tail,
                                                        groups.tail)):
            key = (gid_old, ("\0nil",) if value is None else value)
            gid = lookup(key)
            if gid is None:
                gid = len(mapping)
                mapping[key] = gid
                extents.append(base + position if head is None
                               else head[position])
                hist.append(0)
            hist[gid] += 1
            add_gid(gid)
        out_groups = self._like(None, group_ids, tail_type=OID,
                                hseqbase=self.hseqbase)
        return out_groups, BAT(OID, extents), BAT(LNG, hist)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def aggregate(self, func: str) -> Any:
        """Scalar aggregate over non-nil tails (``aggr.sum`` etc.).

        ``count`` counts all associations (MonetDB counts nils too for
        ``count(*)``-style counts); the others skip nils and return nil on
        an all-nil/empty input.
        """
        if func == "count":
            return len(self.tail)
        tail = self.tail
        values = [v for v in tail if v is not None] if None in tail else tail
        if not values:
            return nil
        if func == "sum":
            return sum(values)
        if func == "min":
            return min(values)
        if func == "max":
            return max(values)
        if func == "avg":
            return float(sum(values)) / len(values)
        raise StorageError(f"unknown aggregate {func!r}")

    def grouped_aggregate(self, groups: "BAT", ngroups: int, func: str) -> "BAT":
        """Per-group aggregate; returns one tail value per group id.

        Single-pass accumulators instead of materialised buckets.  Sums
        accumulate from 0 in input order — bit-identical to folding each
        bucket with ``sum`` — and ``avg`` divides the same sum by the
        non-nil count.
        """
        if len(groups) != len(self):
            raise StorageError("grouped aggregate length mismatch")
        gids = groups.tail
        if groups.tail_type.name not in _INT_TAILS:
            gids = [int(g) for g in gids]
        tail = self.tail
        if func == "count":
            counted = Counter(gids)
            return self._like(None, [counted[g] for g in range(ngroups)],
                              tail_type=LNG)
        if func in ("sum", "avg"):
            sums: List[Any] = [0] * ngroups
            if None in tail:
                nonnil = [0] * ngroups
                for value, gid in zip(tail, gids):
                    if value is not None:
                        sums[gid] += value
                        nonnil[gid] += 1
            elif func == "sum":
                # nil-free sum needs only group *presence*, not counts
                for value, gid in zip(tail, gids):
                    sums[gid] += value
                present = set(gids)
                results = [sums[g] if g in present else None
                           for g in range(ngroups)]
                return self._like(None, results, tail_type=self.tail_type)
            else:
                for value, gid in zip(tail, gids):
                    sums[gid] += value
                counted = Counter(gids)
                nonnil = [counted[g] for g in range(ngroups)]
            if func == "sum":
                results = [sums[g] if nonnil[g] else None
                           for g in range(ngroups)]
                return self._like(None, results, tail_type=self.tail_type)
            results = [float(sums[g]) / nonnil[g] if nonnil[g] else None
                       for g in range(ngroups)]
            return self._like(None, results, tail_type=DBL)
        if func in ("min", "max"):
            best: List[Any] = [None] * ngroups
            if func == "min":
                for value, gid in zip(tail, gids):
                    if value is None:
                        continue
                    current = best[gid]
                    if current is None or value < current:
                        best[gid] = value
            else:
                for value, gid in zip(tail, gids):
                    if value is None:
                        continue
                    current = best[gid]
                    if current is None or value > current:
                        best[gid] = value
            return self._like(None, best, tail_type=self.tail_type)
        raise StorageError(f"unknown aggregate {func!r}")

    # ------------------------------------------------------------------
    # elementwise calculation (MAL batcalc)
    # ------------------------------------------------------------------

    def calc(self, other: "BAT", op: str, out_type: Optional[MalType] = None) -> "BAT":
        """Elementwise binary op with another BAT of equal length."""
        if len(other) != len(self):
            raise StorageError("batcalc length mismatch")
        fn = _calc_fn(op)
        a, b = self.tail, other.tail
        if None in a or None in b:
            tail = [None if (x is None or y is None) else fn(x, y)
                    for x, y in zip(a, b)]
        else:
            tail = list(map(fn, a, b))
        return self._calc_out(tail, op, out_type, other.tail_type)

    def calc_const(self, value: Any, op: str, swapped: bool = False,
                   out_type: Optional[MalType] = None) -> "BAT":
        """Elementwise binary op against a constant."""
        fn = _calc_fn(op)
        a = self.tail
        if value is nil:
            tail: List[Any] = [nil] * len(a)
        elif None in a:
            if swapped:
                tail = [None if v is None else fn(value, v) for v in a]
            else:
                tail = [None if v is None else fn(v, value) for v in a]
        elif swapped:
            tail = list(map(fn, repeat(value), a))
        else:
            tail = list(map(fn, a, repeat(value)))
        from repro.storage.types import infer_type

        other_type = self.tail_type if value is nil else infer_type(value)
        return self._calc_out(tail, op, out_type, other_type)

    def _calc_out(self, tail: List[Any], op: str,
                  out_type: Optional[MalType], other_type: MalType) -> "BAT":
        skip_cast = False
        if out_type is None:
            if op in _OPS:
                # comparison kernels yield real bools: already BIT-shaped
                out_type = BIT
                skip_cast = True
            elif op in ("and", "or"):
                out_type = BIT
            elif op == "/":
                out_type = DBL
                # true division of numerics is always a float (or nil)
                skip_cast = (self.tail_type.name in _NUMERIC_TAILS
                             and other_type.name in _NUMERIC_TAILS)
            else:
                from repro.storage.types import promote

                try:
                    out_type = promote(self.tail_type, other_type)
                except TypeMismatchError:
                    out_type = self.tail_type
                else:
                    # numeric arithmetic already matches the promoted type
                    skip_cast = op in ("+", "-", "*", "%")
        if not skip_cast:
            tail = [cast_value(v, out_type) for v in tail]
        heads = None if self.head is None else list(self.head)
        out = BAT(out_type, hseqbase=self.hseqbase)
        out.head = heads
        out.tail = tail
        return out


def _safe_div(a: Any, b: Any) -> Any:
    return a / b if b else None


def _safe_mod(a: Any, b: Any) -> Any:
    return a % b if b else None


def _logical_and(a: Any, b: Any) -> Any:
    return a and b


def _logical_or(a: Any, b: Any) -> Any:
    return a or b


_CALC_FNS: dict = {
    **_OPS,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _safe_div,
    "%": _safe_mod,
    "and": _logical_and,
    "or": _logical_or,
}


def _calc_fn(op: str) -> Callable[[Any, Any], Any]:
    try:
        return _CALC_FNS[op]
    except KeyError:
        raise StorageError(f"unknown calc operator {op!r}") from None
