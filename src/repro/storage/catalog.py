"""Relational catalog over BAT storage.

A :class:`Catalog` holds named :class:`Schema` objects; each schema holds
:class:`Table` objects; each table column is one void-headed :class:`BAT`.
This is the structure MAL's ``sql.bind`` taps into: binding a column of a
table yields its BAT.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.storage.bat import BAT
from repro.storage.types import MalType, cast_value, type_by_name


class Column:
    """A named, typed column of a table, stored as a void-headed BAT."""

    def __init__(self, name: str, mal_type: MalType) -> None:
        self.name = name
        self.mal_type = mal_type
        self.bat = BAT(mal_type)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Column({self.name}:{self.mal_type.name})"


class Table:
    """A relational table: an ordered set of equally long columns."""

    def __init__(self, name: str, columns: Sequence[Tuple[str, MalType]]) -> None:
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns: Dict[str, Column] = {}
        for col_name, mal_type in columns:
            key = col_name.lower()
            if key in self.columns:
                raise CatalogError(f"duplicate column {col_name!r} in {name!r}")
            self.columns[key] = Column(col_name, mal_type)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Table({self.name}, {len(self.columns)} cols, {self.row_count()} rows)"

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column_names(self) -> List[str]:
        """Column names in definition order."""
        return [c.name for c in self.columns.values()]

    def row_count(self) -> int:
        """Number of rows (0 for a fresh table)."""
        first = next(iter(self.columns.values()))
        return first.bat.count()

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row; values are cast to the column types."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} != table arity {len(self.columns)}"
            )
        for column, value in zip(self.columns.values(), row):
            column.bat.append(value)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows in one bulk pass; returns the number inserted.

        Rows are transposed into per-column value lists, cast in one
        comprehension per column, and appended with a C-level extend —
        all-or-nothing: a bad value anywhere rejects the whole batch
        before any column is touched.
        """
        rows = [tuple(row) for row in rows]
        arity = len(self.columns)
        for row in rows:
            if len(row) != arity:
                raise CatalogError(
                    f"row arity {len(row)} != table arity {arity}"
                )
        if not rows:
            return 0
        cast_columns: List[List[Any]] = []
        for position, column in enumerate(self.columns.values()):
            caster = column.mal_type.caster
            cast_columns.append([
                None if row[position] is None else caster(row[position])
                for row in rows
            ])
        for column, values in zip(self.columns.values(), cast_columns):
            column.bat._extend_raw(values)
        return len(rows)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate rows as tuples, in oid order."""
        bats = [c.bat for c in self.columns.values()]
        return zip(*(b.tail for b in bats)) if bats else iter(())


class Schema:
    """A namespace of tables."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}

    def create_table(self, name: str,
                     columns: Sequence[Tuple[str, MalType]]) -> Table:
        """Create a table; errors on duplicates."""
        key = name.lower()
        if key in self.tables:
            raise CatalogError(f"table {name!r} already exists in {self.name!r}")
        table = Table(name, columns)
        self.tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; errors if absent."""
        try:
            del self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} in {self.name!r}") from None

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} in schema {self.name!r}") from None


class Catalog:
    """Top-level catalog; created with a default ``sys`` schema.

    The catalog carries a monotonically increasing :attr:`version` that
    plan caches fold into their keys: any DDL/DML path that changes what
    a compiled plan would look like calls :meth:`invalidate`.  The
    cheaper :meth:`fingerprint` additionally folds in table and row
    counts, so data loaded behind the catalog's back (direct
    ``Table.insert`` / ``populate``) still changes the key.
    """

    DEFAULT_SCHEMA = "sys"

    def __init__(self) -> None:
        self.schemas: Dict[str, Schema] = {}
        #: bumped by every invalidating DDL/DML operation
        self.version = 0
        self.create_schema(self.DEFAULT_SCHEMA)

    def invalidate(self) -> None:
        """Bump the structural version (plan-cache invalidation hook)."""
        self.version += 1

    def fingerprint(self) -> Tuple[int, int, int]:
        """(version, table count, total rows) — the plan-cache key part.

        Row counts matter because the default optimizer pipeline's
        mitosis pass partitions by the largest table's cardinality: the
        right plan for a table changes as the table grows.
        """
        tables = 0
        rows = 0
        for schema in self.schemas.values():
            for table in schema.tables.values():
                tables += 1
                rows += table.row_count()
        return (self.version, tables, rows)

    def create_schema(self, name: str) -> Schema:
        """Create a schema; errors on duplicates."""
        key = name.lower()
        if key in self.schemas:
            raise CatalogError(f"schema {name!r} already exists")
        schema = Schema(name)
        self.schemas[key] = schema
        return schema

    def schema(self, name: Optional[str] = None) -> Schema:
        """Look up a schema (default schema when name is None)."""
        key = (name or self.DEFAULT_SCHEMA).lower()
        try:
            return self.schemas[key]
        except KeyError:
            raise CatalogError(f"no schema {name!r}") from None

    def table(self, name: str, schema: Optional[str] = None) -> Table:
        """Convenience: look up ``schema.table``."""
        return self.schema(schema).table(name)

    def bind(self, schema: str, table: str, column: str) -> BAT:
        """MAL ``sql.bind``: the BAT backing one column."""
        return self.schema(schema).table(table).column(column).bat

    def create_table_from_sql_types(
        self, name: str, columns: Sequence[Tuple[str, str]],
        schema: Optional[str] = None,
    ) -> Table:
        """Create a table from (name, type-name) pairs, mapping common SQL
        type names onto MAL atoms (``integer``→int, ``varchar``→str, ...)."""
        resolved = [
            (col_name, _sql_type_to_mal(type_name)) for col_name, type_name in columns
        ]
        return self.schema(schema).create_table(name, resolved)


_SQL_TYPE_MAP = {
    "int": "int",
    "integer": "int",
    "smallint": "int",
    "tinyint": "int",
    "bigint": "lng",
    "decimal": "dbl",
    "numeric": "dbl",
    "real": "dbl",
    "float": "dbl",
    "double": "dbl",
    "varchar": "str",
    "char": "str",
    "text": "str",
    "string": "str",
    "clob": "str",
    "boolean": "bit",
    "bool": "bit",
    "date": "date",
    "oid": "oid",
}


def _sql_type_to_mal(type_name: str) -> MalType:
    base = type_name.strip().lower().split("(", 1)[0].strip()
    try:
        return type_by_name(_SQL_TYPE_MAP.get(base, base))
    except Exception:
        raise CatalogError(f"unsupported SQL type {type_name!r}") from None
