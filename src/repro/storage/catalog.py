"""Relational catalog over BAT storage.

A :class:`Catalog` holds named :class:`Schema` objects; each schema holds
:class:`Table` objects; each table column is one void-headed :class:`BAT`.
This is the structure MAL's ``sql.bind`` taps into: binding a column of a
table yields its BAT.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.storage.bat import BAT
from repro.storage.types import MalType, cast_value, type_by_name


class Column:
    """A named, typed column of a table, stored as a void-headed BAT."""

    def __init__(self, name: str, mal_type: MalType) -> None:
        self.name = name
        self.mal_type = mal_type
        self.bat = BAT(mal_type)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Column({self.name}:{self.mal_type.name})"


class Table:
    """A relational table: an ordered set of equally long columns."""

    def __init__(self, name: str, columns: Sequence[Tuple[str, MalType]]) -> None:
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns: Dict[str, Column] = {}
        for col_name, mal_type in columns:
            key = col_name.lower()
            if key in self.columns:
                raise CatalogError(f"duplicate column {col_name!r} in {name!r}")
            self.columns[key] = Column(col_name, mal_type)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Table({self.name}, {len(self.columns)} cols, {self.row_count()} rows)"

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        try:
            return self.columns[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column_names(self) -> List[str]:
        """Column names in definition order."""
        return [c.name for c in self.columns.values()]

    def row_count(self) -> int:
        """Number of rows (0 for a fresh table)."""
        first = next(iter(self.columns.values()))
        return first.bat.count()

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row; values are cast to the column types."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row arity {len(row)} != table arity {len(self.columns)}"
            )
        for column, value in zip(self.columns.values(), row):
            column.bat.append(value)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        n = 0
        for row in rows:
            self.insert(row)
            n += 1
        return n

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate rows as tuples, in oid order."""
        bats = [c.bat for c in self.columns.values()]
        return zip(*(b.tail for b in bats)) if bats else iter(())


class Schema:
    """A namespace of tables."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}

    def create_table(self, name: str,
                     columns: Sequence[Tuple[str, MalType]]) -> Table:
        """Create a table; errors on duplicates."""
        key = name.lower()
        if key in self.tables:
            raise CatalogError(f"table {name!r} already exists in {self.name!r}")
        table = Table(name, columns)
        self.tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Drop a table; errors if absent."""
        try:
            del self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} in {self.name!r}") from None

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r} in schema {self.name!r}") from None


class Catalog:
    """Top-level catalog; created with a default ``sys`` schema."""

    DEFAULT_SCHEMA = "sys"

    def __init__(self) -> None:
        self.schemas: Dict[str, Schema] = {}
        self.create_schema(self.DEFAULT_SCHEMA)

    def create_schema(self, name: str) -> Schema:
        """Create a schema; errors on duplicates."""
        key = name.lower()
        if key in self.schemas:
            raise CatalogError(f"schema {name!r} already exists")
        schema = Schema(name)
        self.schemas[key] = schema
        return schema

    def schema(self, name: Optional[str] = None) -> Schema:
        """Look up a schema (default schema when name is None)."""
        key = (name or self.DEFAULT_SCHEMA).lower()
        try:
            return self.schemas[key]
        except KeyError:
            raise CatalogError(f"no schema {name!r}") from None

    def table(self, name: str, schema: Optional[str] = None) -> Table:
        """Convenience: look up ``schema.table``."""
        return self.schema(schema).table(name)

    def bind(self, schema: str, table: str, column: str) -> BAT:
        """MAL ``sql.bind``: the BAT backing one column."""
        return self.schema(schema).table(table).column(column).bat

    def create_table_from_sql_types(
        self, name: str, columns: Sequence[Tuple[str, str]],
        schema: Optional[str] = None,
    ) -> Table:
        """Create a table from (name, type-name) pairs, mapping common SQL
        type names onto MAL atoms (``integer``→int, ``varchar``→str, ...)."""
        resolved = [
            (col_name, _sql_type_to_mal(type_name)) for col_name, type_name in columns
        ]
        return self.schema(schema).create_table(name, resolved)


_SQL_TYPE_MAP = {
    "int": "int",
    "integer": "int",
    "smallint": "int",
    "tinyint": "int",
    "bigint": "lng",
    "decimal": "dbl",
    "numeric": "dbl",
    "real": "dbl",
    "float": "dbl",
    "double": "dbl",
    "varchar": "str",
    "char": "str",
    "text": "str",
    "string": "str",
    "clob": "str",
    "boolean": "bit",
    "bool": "bit",
    "date": "date",
    "oid": "oid",
}


def _sql_type_to_mal(type_name: str) -> MalType:
    base = type_name.strip().lower().split("(", 1)[0].strip()
    try:
        return type_by_name(_SQL_TYPE_MAP.get(base, base))
    except Exception:
        raise CatalogError(f"unsupported SQL type {type_name!r}") from None
