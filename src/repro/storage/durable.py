"""Durable storage: write-ahead log, columnar checkpoints, recovery.

MonetDB's BATs survive restarts in a ``dbfarm``; this module gives the
reproduction the same property with the classic recipe:

* an append-only **write-ahead log** (``wal.log``) of length-prefixed,
  CRC32-checksummed records — one per DDL statement or INSERT batch —
  made durable by *group commit*: concurrent writers that land inside
  one commit window share a single ``fsync``;
* binary **columnar checkpoints**: one file per BAT (reusing the
  memoized :meth:`~repro.storage.bat.BAT.to_ship_bytes` payload), plus a
  JSON manifest with per-file checksums, written to a temp directory and
  atomically renamed into place — a successful checkpoint truncates the
  WAL;
* **recovery** on open: load the newest checkpoint that validates
  (falling back past damaged ones), replay the WAL tail record by
  record, and stop cleanly at the first torn or corrupt record.

The correctness contract, verified end to end by the ``durability-chaos``
mix and ``tests/test_durability.py``:

* a statement is **acknowledged only after its WAL record is fsynced**
  — recovery never loses an acknowledged row;
* a statement that fails with :class:`~repro.errors.WalError` was rolled
  back in memory and **will not** be resurrected by recovery;
* torn WAL tails (crash mid-write) are detected by the CRC and length
  prefix and dropped — they were never acknowledged, so dropping them
  loses nothing.

Fault sites (driven by the seeded :class:`~repro.faults.plan.FaultPlan`):
``persist.wal`` (``torn-write``, ``fsync-loss``, ``latency``),
``persist.checkpoint`` (``partial-manifest``, ``crash-before-rename``)
and ``persist.recover`` (``corrupt-record``).  See ``docs/durability.md``
for the on-disk formats and the recovery algorithm.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import shutil
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CheckpointError, StorageError, WalError
from repro.faults.plan import ACTIVE
from repro.metrics.families import (
    PERSIST_CHECKPOINTS, PERSIST_GROUP_COMMIT_BATCH, PERSIST_RECOVERED_RECORDS,
    PERSIST_RECOVERIES, PERSIST_TORN_RECORDS_DROPPED, PERSIST_WAL_APPENDS,
    PERSIST_WAL_BYTES,
)
from repro.storage.catalog import Catalog
from repro.storage.types import type_by_name
from repro.storage.unpickle import restricted_loads

#: WAL record header: ``<QII`` = lsn (8 bytes), payload length (4),
#: CRC32 of the payload (4).  The payload is a pickled ``(kind, data)``.
_HEADER = struct.Struct("<QII")

#: On-disk names inside a WAL directory.
WAL_FILENAME = "wal.log"
MANIFEST_FILENAME = "manifest.json"
EPOCH_FILENAME = "epoch"
_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{12})$")

#: Checkpoint manifest format version.
CHECKPOINT_FORMAT = 1

#: Checkpoint directories kept after a successful checkpoint (the new
#: one plus this many predecessors as fallback targets).
KEEP_CHECKPOINTS = 2


def _fsync_dir(path: str) -> None:
    """fsync a directory so a rename inside it survives a crash."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def encode_record(lsn: int, kind: str, data: Any) -> bytes:
    """Serialize one WAL record (header + pickled payload)."""
    payload = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(lsn, len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> Tuple[str, Any]:
    """Decode one WAL record payload back to ``(kind, data)``.

    Uses the restricted unpickler (WAL payloads hold only scalars,
    containers, and ``datetime.date``), so corrupted or hostile bytes —
    whether read from disk or received over the replication stream —
    fail with a typed :class:`WalError` instead of executing
    attacker-controlled reduces.
    """
    try:
        kind, data = restricted_loads(payload)
    except Exception as exc:
        raise WalError(f"undecodable WAL record payload: {exc}") from None
    if not isinstance(kind, str):
        raise WalError(
            f"malformed WAL record payload: kind is {type(kind).__name__}")
    return kind, data


# -- the replication epoch stamp -------------------------------------------

def read_epoch(wal_dir: str) -> int:
    """The replication epoch persisted in a WAL directory (0 if none)."""
    try:
        with open(os.path.join(wal_dir, EPOCH_FILENAME)) as handle:
            return int(handle.read().strip() or "0")
    except FileNotFoundError:
        return 0
    except (OSError, ValueError) as exc:
        raise WalError(f"unreadable epoch stamp in {wal_dir}: {exc}") \
            from None


def write_epoch(wal_dir: str, epoch: int) -> None:
    """Persist the replication epoch atomically (tmp + rename + fsync).

    The stamp must never regress or tear: a promoted node's fencing
    guarantee rests on every restart observing the highest epoch this
    node ever acknowledged.
    """
    final = os.path.join(wal_dir, EPOCH_FILENAME)
    tmp = final + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{int(epoch)}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp, final)
    _fsync_dir(wal_dir)


# --------------------------------------------------------------------------
# the write-ahead log
# --------------------------------------------------------------------------

class WriteAheadLog:
    """An append-only, CRC-checked log with leader-based group commit.

    :meth:`append` writes a record's bytes (serialized under a lock, so
    records never interleave) and returns its LSN; :meth:`commit` blocks
    until that LSN is fsynced.  The first committer becomes the *leader*:
    it sleeps for the commit window (letting concurrent appends pile up),
    issues one ``fsync`` for the whole batch, and wakes every waiter.
    A window of 0 degenerates to per-record fsync.

    LSNs are assigned once and **never reused** — a record rolled back by
    a failed fsync leaves a gap, which recovery tolerates (it requires
    strictly increasing LSNs, not contiguous ones).  Failure semantics:

    * ``torn-write`` fault: a prefix of the record's bytes is written and
      the log is *poisoned* — every later append fails until recovery
      truncates the damaged tail;
    * a failed fsync (``fsync-loss`` fault or a real ``OSError``) rolls
      the file back to the durable watermark and fails every waiter in
      the batch with :class:`WalError`.
    """

    def __init__(self, path: str, commit_window_ms: float = 2.0,
                 last_lsn: int = 0) -> None:
        self.path = path
        self.commit_window = max(float(commit_window_ms), 0.0) / 1000.0
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        size = os.fstat(self._fd).st_size
        self._written_bytes = size
        self._durable_bytes = size
        self._next_lsn = int(last_lsn) + 1
        self._written_lsn = int(last_lsn)
        self._durable_lsn = int(last_lsn)
        self._cond = threading.Condition()
        self._syncing = False
        self._poisoned = False
        self._closed = False
        self._fail_next_sync = False
        self._unsynced: List[int] = []   # appended, not yet fsynced
        self._failed: set = set()        # rolled back by a failed fsync
        #: lsns whose in-memory effect is still being undone after a
        #: failed fsync; appends (and checkpoints) block on this so a
        #: later statement can never apply on top of half-rolled-back
        #: state (its undo-by-truncation would destroy the newcomer).
        self._pending_rollbacks: set = set()
        # plain counters for stats()/benchmarks (GIL-atomic increments)
        self.appends = 0
        self.fsyncs = 0
        self.synced_records = 0

    # -- introspection --------------------------------------------------

    @property
    def durable_lsn(self) -> int:
        return self._durable_lsn

    @property
    def written_lsn(self) -> int:
        return self._written_lsn

    @property
    def durable_bytes(self) -> int:
        return self._durable_bytes

    @property
    def written_bytes(self) -> int:
        return self._written_bytes

    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def stats(self) -> Dict[str, int]:
        with self._cond:
            return {
                "appends": self.appends,
                "fsyncs": self.fsyncs,
                "synced_records": self.synced_records,
                "written_bytes": self._written_bytes,
                "durable_bytes": self._durable_bytes,
                "written_lsn": self._written_lsn,
                "durable_lsn": self._durable_lsn,
            }

    # -- writing --------------------------------------------------------

    def append(self, kind: str, data: Any) -> int:
        """Write one record; returns its LSN (durable only after
        :meth:`commit`).  Raises :class:`WalError` if the log is
        poisoned or a ``persist.wal:torn-write`` fault fires."""
        payload = pickle.dumps((kind, data),
                               protocol=pickle.HIGHEST_PROTOCOL)
        with self._cond:
            while self._pending_rollbacks and not self._closed:
                self._cond.wait()
            if self._closed:
                raise WalError("write-ahead log is closed")
            if self._poisoned:
                raise WalError(
                    "write-ahead log poisoned by a torn write; "
                    "reopen (recover) to continue")
            plan = ACTIVE.plan
            if plan is not None:
                decision = plan.decide("persist.wal", detail=kind)
                if decision is not None:
                    if decision.action == "latency":
                        time.sleep((decision.value or 1.0) / 1000.0)
                    elif decision.action == "fsync-loss":
                        self._fail_next_sync = True
                    elif decision.action == "torn-write":
                        lsn = self._next_lsn
                        self._next_lsn += 1
                        record = _HEADER.pack(
                            lsn, len(payload), zlib.crc32(payload)) + payload
                        torn = record[:max(1, len(record) // 2)]
                        os.pwrite(self._fd, torn, self._written_bytes)
                        self._written_bytes += len(torn)
                        self._poisoned = True
                        raise WalError(
                            f"torn write at lsn {lsn}: only "
                            f"{len(torn)}/{len(record)} bytes reached "
                            f"the log")
            lsn = self._next_lsn
            self._next_lsn += 1
            record = _HEADER.pack(lsn, len(payload),
                                  zlib.crc32(payload)) + payload
            os.pwrite(self._fd, record, self._written_bytes)
            self._written_bytes += len(record)
            self._written_lsn = lsn
            self._unsynced.append(lsn)
            self.appends += 1
            PERSIST_WAL_APPENDS.labels(kind=kind).inc()
            PERSIST_WAL_BYTES.inc(len(record))
            return lsn

    def append_raw(self, lsn: int, kind: str, payload: bytes) -> int:
        """Append a record at an explicit, primary-assigned LSN.

        The replica apply path: ``payload`` is the already-pickled
        ``(kind, data)`` bytes exactly as the primary logged them, so
        the follower's WAL is byte-compatible with the primary's and
        recovery replays it identically.  ``lsn`` must sort after every
        record already written.  Durable only after :meth:`commit`.
        """
        with self._cond:
            while self._pending_rollbacks and not self._closed:
                self._cond.wait()
            if self._closed:
                raise WalError("write-ahead log is closed")
            if self._poisoned:
                raise WalError(
                    "write-ahead log poisoned by a torn write; "
                    "reopen (recover) to continue")
            if lsn <= self._written_lsn:
                raise WalError(
                    f"replicated lsn {lsn} does not sort after the "
                    f"local tail (written lsn {self._written_lsn})")
            record = _HEADER.pack(lsn, len(payload),
                                  zlib.crc32(payload)) + payload
            os.pwrite(self._fd, record, self._written_bytes)
            self._written_bytes += len(record)
            self._written_lsn = lsn
            self._next_lsn = lsn + 1
            self._unsynced.append(lsn)
            self.appends += 1
            PERSIST_WAL_APPENDS.labels(kind=kind).inc()
            PERSIST_WAL_BYTES.inc(len(record))
            return lsn

    def commit(self, lsn: int) -> None:
        """Block until ``lsn`` is durable (group commit).

        Raises:
            WalError: the batch's fsync failed; the record's bytes were
                truncated away and the caller must roll back its
                in-memory effect.
        """
        with self._cond:
            while True:
                if lsn in self._failed:
                    self._failed.discard(lsn)
                    raise WalError(
                        f"fsync failed for the batch containing lsn "
                        f"{lsn}; record rolled back")
                if lsn <= self._durable_lsn:
                    return
                if self._closed:
                    raise WalError("write-ahead log is closed")
                if not self._syncing:
                    self._syncing = True
                    break
                self._cond.wait()
        # leader: wait out the commit window so concurrent appends batch
        if self.commit_window:
            time.sleep(self.commit_window)
        with self._cond:
            target_bytes = self._written_bytes
            batch = list(self._unsynced)
            fail = self._fail_next_sync
            self._fail_next_sync = False
        try:
            if fail:
                raise OSError(5, "injected fsync loss")
            os.fsync(self._fd)
        except OSError as exc:
            with self._cond:
                os.ftruncate(self._fd, self._durable_bytes)
                self._written_bytes = self._durable_bytes
                self._written_lsn = self._durable_lsn
                self._failed.update(self._unsynced)
                self._pending_rollbacks.update(self._unsynced)
                self._unsynced.clear()
                self._failed.discard(lsn)
                self._syncing = False
                self._cond.notify_all()
            raise WalError(f"wal fsync failed: {exc}") from None
        with self._cond:
            self._durable_bytes = target_bytes
            if batch:
                self._durable_lsn = batch[-1]
                self.synced_records += len(batch)
                PERSIST_GROUP_COMMIT_BATCH.observe(float(len(batch)))
            self.fsyncs += 1
            # appends that raced the fsync stay queued for the next one
            del self._unsynced[:len(batch)]
            self._syncing = False
            self._cond.notify_all()

    def acknowledge_rollback(self, lsn: int) -> None:
        """Report that ``lsn``'s in-memory effect has been undone;
        appends resume once every failed statement has reported."""
        with self._cond:
            self._pending_rollbacks.discard(lsn)
            if not self._pending_rollbacks:
                self._cond.notify_all()

    def wait_rollbacks(self) -> None:
        """Block until no failed statement is still undoing itself."""
        with self._cond:
            while self._pending_rollbacks:
                self._cond.wait()

    def sync_all(self) -> None:
        """Make every written record durable (checkpoint prologue)."""
        with self._cond:
            while self._syncing:
                self._cond.wait()
            if not self._unsynced:
                return
            target = self._unsynced[-1]
        self.commit(target)

    # -- maintenance ----------------------------------------------------

    def truncate(self) -> None:
        """Drop every record (post-checkpoint).  LSNs keep counting from
        where they were, so later records still sort after the
        checkpoint; a poisoned tail is cleared along with the rest."""
        with self._cond:
            os.ftruncate(self._fd, 0)
            os.fsync(self._fd)
            self._written_bytes = 0
            self._durable_bytes = 0
            self._written_lsn = self._durable_lsn
            self._unsynced.clear()
            self._poisoned = False

    def truncate_to_durable(self) -> int:
        """Drop the written-but-unsynced tail (promotion prologue).

        Exactly what crash recovery would do to these records: they
        were never acknowledged durable, so a replica promoting itself
        cuts them off rather than promoting a tail its deposed primary
        may never have committed.  Returns the number of records
        dropped.  Clears torn-write poisoning along with the tail.
        """
        with self._cond:
            if self._closed:
                raise WalError("write-ahead log is closed")
            dropped = len(self._unsynced)
            os.ftruncate(self._fd, self._durable_bytes)
            os.fsync(self._fd)
            self._written_bytes = self._durable_bytes
            self._written_lsn = self._durable_lsn
            self._next_lsn = self._durable_lsn + 1
            self._unsynced.clear()
            self._poisoned = False
            return dropped

    def reset_to(self, lsn: int) -> None:
        """Empty the log and restart LSNs after ``lsn`` (bootstrap).

        Used when a follower installs a checkpoint snapshot shipped by
        the primary: the local history before ``lsn`` is superseded by
        the snapshot, and subsequent records continue at primary LSNs.
        """
        with self._cond:
            if self._closed:
                raise WalError("write-ahead log is closed")
            os.ftruncate(self._fd, 0)
            os.fsync(self._fd)
            self._written_bytes = 0
            self._durable_bytes = 0
            self._written_lsn = int(lsn)
            self._durable_lsn = int(lsn)
            self._next_lsn = int(lsn) + 1
            self._unsynced.clear()
            self._poisoned = False

    def simulate_crash(self, keep_bytes: Optional[int] = None) -> int:
        """Test hook: die abruptly, keeping an arbitrary prefix.

        Closes the log and truncates the file to ``keep_bytes``, clamped
        to ``[durable_bytes, written_bytes]`` — the range of states the
        OS page cache could have left behind had the process been
        SIGKILLed.  Returns the byte count actually kept.
        """
        with self._cond:
            if self._closed:
                raise WalError("write-ahead log is closed")
            low, high = self._durable_bytes, self._written_bytes
            keep = high if keep_bytes is None else max(low, min(high,
                                                                keep_bytes))
            os.ftruncate(self._fd, keep)
            os.fsync(self._fd)
            os.close(self._fd)
            self._closed = True
            self._cond.notify_all()
            return keep

    def close(self) -> None:
        """Flush and close; idempotent.  A clean close fsyncs, so every
        written (non-torn) record survives a graceful shutdown."""
        with self._cond:
            if self._closed:
                return
            try:
                if not self._poisoned:
                    try:
                        os.fsync(self._fd)
                        self._durable_bytes = self._written_bytes
                        self._durable_lsn = self._written_lsn
                        self._unsynced.clear()
                    except OSError:
                        pass
            finally:
                os.close(self._fd)
                self._closed = True
                self._cond.notify_all()


# --------------------------------------------------------------------------
# WAL scanning (recovery's read side)
# --------------------------------------------------------------------------

@dataclass
class WalScan:
    """What a WAL file held: the valid record prefix and damage info."""

    records: List[Tuple[int, str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    total_bytes: int = 0
    last_lsn: int = 0
    torn: bool = False


def scan_wal(path: str) -> WalScan:
    """Parse a WAL file up to the first torn/corrupt record.

    A record is rejected (and the scan stops — everything after it is
    unreachable because record boundaries are length-chained) when its
    header is short, its payload runs past EOF, its CRC mismatches, its
    payload fails to decode, its LSN is not strictly increasing, or a
    ``persist.recover:corrupt-record`` fault fires for it.
    """
    scan = WalScan()
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return scan
    scan.total_bytes = len(blob)
    offset = 0
    plan = ACTIVE.plan
    while offset + _HEADER.size <= len(blob):
        lsn, length, crc = _HEADER.unpack_from(blob, offset)
        end = offset + _HEADER.size + length
        if lsn <= scan.last_lsn or end > len(blob):
            scan.torn = True
            break
        payload = blob[offset + _HEADER.size:end]
        if zlib.crc32(payload) != crc:
            scan.torn = True
            break
        try:
            kind, data = decode_payload(payload)
        except WalError:
            scan.torn = True
            break
        if plan is not None:
            decision = plan.decide("persist.recover", detail=str(lsn))
            if decision is not None and decision.action == "corrupt-record":
                scan.torn = True
                break
        scan.records.append((lsn, kind, data))
        scan.last_lsn = lsn
        scan.valid_bytes = end
        offset = end
    else:
        # a trailing partial header is a torn tail too
        if offset < len(blob):
            scan.torn = True
    return scan


def read_wal_records(path: str, from_lsn: int, durable_bytes: int,
                     limit_bytes: int = 256 * 1024
                     ) -> Tuple[List[Tuple[int, bytes]], bool, int]:
    """The log-follower cursor: committed records past a position.

    Reads the WAL file's durable prefix (``durable_bytes`` — never the
    unsynced tail, which could still be rolled back) and returns
    ``(records, more, pending_bytes)`` where ``records`` is
    ``[(lsn, payload), ...]`` for every record with ``lsn > from_lsn``,
    raw payload bytes exactly as written, capped at roughly
    ``limit_bytes`` of payload per call.  ``more`` is True when the cap
    stopped the read early, and ``pending_bytes`` counts the payload
    bytes left beyond the cap (a follower's byte lag after applying
    this batch).  CRCs are verified — a mismatch inside the durable
    prefix means the file was damaged underneath us and raises
    :class:`WalError`.
    """
    records: List[Tuple[int, bytes]] = []
    try:
        with open(path, "rb") as handle:
            blob = handle.read(durable_bytes)
    except FileNotFoundError:
        return records, False, 0
    offset = 0
    taken = 0
    pending = 0
    capped = False
    while offset + _HEADER.size <= len(blob):
        lsn, length, crc = _HEADER.unpack_from(blob, offset)
        end = offset + _HEADER.size + length
        if end > len(blob):
            break
        payload = blob[offset + _HEADER.size:end]
        if zlib.crc32(payload) != crc:
            raise WalError(
                f"CRC mismatch at offset {offset} inside the durable "
                f"prefix of {path}")
        if lsn > from_lsn:
            if capped or (records and taken + len(payload) > limit_bytes):
                capped = True
                pending += len(payload)
            else:
                records.append((lsn, payload))
                taken += len(payload)
        offset = end
    return records, capped, pending


# --------------------------------------------------------------------------
# checkpoints
# --------------------------------------------------------------------------

@dataclass
class CheckpointReport:
    """What one checkpoint wrote."""

    path: str
    lsn: int
    files: int
    rows: int
    bytes: int


def list_checkpoints(directory: str) -> List[Tuple[int, str]]:
    """(lsn, path) of every completed checkpoint, oldest first."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _CHECKPOINT_RE.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    found.sort()
    return found


def write_checkpoint(catalog: Catalog, directory: str,
                     lsn: int) -> CheckpointReport:
    """Write a checkpoint of ``catalog`` as of WAL position ``lsn``.

    One ``.col`` file per column (the BAT's memoized ship payload), then
    a manifest with per-file CRCs; everything goes to a ``.tmp``
    directory, is fsynced (files *and* the directory), and the directory
    is renamed into place.  A valid checkpoint already present at this
    LSN is reused as-is — same LSN means same durable prefix, and
    deleting it first would leave a crash window with no checkpoint
    while its WAL coverage is already truncated.
    Injected faults: ``partial-manifest`` truncates the manifest *and
    still renames* (recovery must detect and fall back);
    ``crash-before-rename`` abandons the temp directory.
    """
    name = f"checkpoint-{lsn:012d}"
    final = os.path.join(directory, name)
    tmp = final + ".tmp"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    stale: Optional[str] = None
    if os.path.exists(final):
        # Same-LSN checkpoints (e.g. two `checkpoint` commands with no
        # intervening statements) describe the same durable prefix.
        # Deleting the existing directory before its replacement is
        # renamed into place would open a crash window with *no*
        # checkpoint at this LSN — and the WAL it covered was already
        # truncated by the first success.  If it validates, it already
        # is the checkpoint we would write: reuse it.  Only a damaged
        # directory is moved aside, and removed after the replacement
        # lands.
        try:
            _, _, existing_rows = load_checkpoint(final)
        except CheckpointError:
            stale = final + ".stale"
            if os.path.exists(stale):
                shutil.rmtree(stale)
            os.rename(final, stale)
        else:
            files = 0
            existing_bytes = 0
            for entry in os.listdir(final):
                if entry.endswith(".col"):
                    files += 1
                    existing_bytes += os.path.getsize(
                        os.path.join(final, entry))
            return CheckpointReport(path=final, lsn=lsn, files=files,
                                    rows=existing_rows,
                                    bytes=existing_bytes)
    os.makedirs(tmp)
    plan = ACTIVE.plan
    decision = (plan.decide("persist.checkpoint", detail=name)
                if plan is not None else None)
    manifest: Dict[str, Any] = {"format": CHECKPOINT_FORMAT, "lsn": lsn,
                                "schemas": []}
    index = 0
    total_rows = 0
    total_bytes = 0
    for schema_name in sorted(catalog.schemas):
        schema = catalog.schemas[schema_name]
        schema_doc: Dict[str, Any] = {"name": schema.name, "tables": []}
        for table_name in sorted(schema.tables):
            table = schema.tables[table_name]
            table_doc: Dict[str, Any] = {"name": table.name, "columns": []}
            for column in table.columns.values():
                payload = column.bat.to_ship_bytes()
                file_name = f"c{index:05d}.col"
                index += 1
                with open(os.path.join(tmp, file_name), "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                table_doc["columns"].append({
                    "name": column.name,
                    "type": column.mal_type.name,
                    "file": file_name,
                    "rows": column.bat.count(),
                    "crc32": zlib.crc32(payload),
                })
                total_bytes += len(payload)
            total_rows += table.row_count()
            schema_doc["tables"].append(table_doc)
        manifest["schemas"].append(schema_doc)
    text = json.dumps(manifest)
    if decision is not None and decision.action == "partial-manifest":
        text = text[:max(1, len(text) // 2)]
    with open(os.path.join(tmp, MANIFEST_FILENAME), "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    # fsync the temp directory itself (not just the files in it) so the
    # renamed checkpoint cannot surface after a power loss with missing
    # column-file entries while the later WAL truncate survives
    _fsync_dir(tmp)
    if decision is not None and decision.action == "crash-before-rename":
        raise CheckpointError(
            f"injected crash before renaming {tmp} into place")
    os.rename(tmp, final)
    _fsync_dir(directory)
    if stale is not None:
        shutil.rmtree(stale, ignore_errors=True)
    if decision is not None and decision.action == "partial-manifest":
        raise CheckpointError(
            f"checkpoint {name} renamed with a torn manifest")
    return CheckpointReport(path=final, lsn=lsn, files=index,
                            rows=total_rows, bytes=total_bytes)


def load_checkpoint(path: str) -> Tuple[Catalog, int, int]:
    """Rebuild a catalog from a checkpoint directory.

    Returns ``(catalog, lsn, rows)``.  Raises :class:`CheckpointError`
    on any damage: unreadable/truncated manifest, wrong format version,
    missing column file, CRC mismatch, or a row-count mismatch.
    """
    manifest_path = os.path.join(path, MANIFEST_FILENAME)
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"unreadable checkpoint manifest {manifest_path}: "
            f"{exc}") from None
    if not isinstance(manifest, dict) or \
            manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format in {manifest_path}: "
            f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r}")
    from repro.storage.bat import BAT

    catalog = Catalog()
    total_rows = 0
    try:
        lsn = int(manifest["lsn"])
        for schema_doc in manifest["schemas"]:
            name = schema_doc["name"]
            if name.lower() in catalog.schemas:
                schema = catalog.schema(name)
            else:
                schema = catalog.create_schema(name)
            for table_doc in schema_doc["tables"]:
                spec = [(c["name"], type_by_name(c["type"]))
                        for c in table_doc["columns"]]
                table = schema.create_table(table_doc["name"], spec)
                for column_doc, column in zip(table_doc["columns"],
                                              table.columns.values()):
                    file_path = os.path.join(path, column_doc["file"])
                    try:
                        with open(file_path, "rb") as handle:
                            payload = handle.read()
                    except OSError as exc:
                        raise CheckpointError(
                            f"missing checkpoint column file "
                            f"{file_path}: {exc}") from None
                    if zlib.crc32(payload) != column_doc["crc32"]:
                        raise CheckpointError(
                            f"checksum mismatch in {file_path}")
                    bat = BAT.from_ship_bytes(payload)
                    if bat.count() != column_doc["rows"] or \
                            bat.tail_type.name != column_doc["type"]:
                        raise CheckpointError(
                            f"column file {file_path} does not match "
                            f"its manifest entry")
                    column.bat = bat
                total_rows += table.row_count()
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, StorageError) as exc:
        raise CheckpointError(
            f"malformed checkpoint manifest {manifest_path}: "
            f"{exc}") from None
    return catalog, lsn, total_rows


def prune_checkpoints(directory: str, keep: int = KEEP_CHECKPOINTS) -> int:
    """Delete all but the newest ``keep`` checkpoints (plus any
    leftover ``.tmp``/``.stale`` directories); returns how many were
    removed."""
    removed = 0
    checkpoints = list_checkpoints(directory)
    for _, path in checkpoints[:-keep] if keep else checkpoints:
        shutil.rmtree(path, ignore_errors=True)
        removed += 1
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return removed
    for name in names:
        for suffix in (".tmp", ".stale"):
            if name.endswith(suffix) and \
                    _CHECKPOINT_RE.match(name[:-len(suffix)]):
                shutil.rmtree(os.path.join(directory, name),
                              ignore_errors=True)
                removed += 1
    return removed


# --------------------------------------------------------------------------
# replay and recovery
# --------------------------------------------------------------------------

def apply_record(catalog: Catalog, kind: str, data: Any) -> int:
    """Apply one WAL record to ``catalog``; returns rows inserted.

    Records are validated *before* they are logged (see
    ``Database._execute_insert`` and friends), so replaying a valid WAL
    against the checkpoint it extends cannot fail.
    """
    if kind == "ddl":
        op = data["op"]
        schema = catalog.schema(data.get("schema"))
        if op == "create":
            schema.create_table(
                data["table"],
                [(name, type_by_name(type_name))
                 for name, type_name in data["columns"]])
        elif op == "drop":
            schema.drop_table(data["table"])
        else:
            raise StorageError(f"unknown DDL op {op!r} in WAL record")
        catalog.invalidate()
        return 0
    if kind == "insert":
        table = catalog.table(data["table"], data.get("schema"))
        return table.insert_many(data["rows"])
    raise StorageError(f"unknown WAL record kind {kind!r}")


@dataclass
class RecoveryReport:
    """What one recovery pass found and rebuilt."""

    wal_dir: str
    checkpoint_path: Optional[str] = None
    checkpoint_lsn: int = 0
    checkpoint_rows: int = 0
    invalid_checkpoints: int = 0
    replayed_records: int = 0
    replayed_rows: int = 0
    torn_bytes_dropped: int = 0
    torn: bool = False
    last_lsn: int = 0

    @property
    def outcome(self) -> str:
        return "torn" if self.torn else "clean"

    @property
    def recovered_anything(self) -> bool:
        """True when the directory held prior state (checkpoint, WAL
        records, or damage evidence) — as opposed to a fresh database."""
        return (self.checkpoint_path is not None
                or self.invalid_checkpoints > 0
                or self.replayed_records > 0 or self.torn)

    def describe(self) -> str:
        lines = [f"recovery of {self.wal_dir}: {self.outcome}"]
        if self.checkpoint_path is not None:
            lines.append(
                f"  checkpoint {os.path.basename(self.checkpoint_path)}"
                f" (lsn {self.checkpoint_lsn}, "
                f"{self.checkpoint_rows} rows)")
        else:
            lines.append("  no checkpoint (fresh or WAL-only state)")
        if self.invalid_checkpoints:
            lines.append(
                f"  skipped {self.invalid_checkpoints} damaged "
                f"checkpoint(s)")
        lines.append(
            f"  replayed {self.replayed_records} WAL record(s), "
            f"{self.replayed_rows} row(s), up to lsn {self.last_lsn}")
        if self.torn:
            lines.append(
                f"  dropped a torn/corrupt WAL tail "
                f"({self.torn_bytes_dropped} byte(s); never "
                f"acknowledged)")
        return "\n".join(lines)


def recover(wal_dir: str) -> Tuple[Catalog, RecoveryReport]:
    """Rebuild the catalog a WAL directory describes.

    Loads the newest checkpoint that validates (skipping damaged ones),
    replays every WAL record with an LSN past the checkpoint, stops at
    the first torn/corrupt record, and truncates the WAL file to its
    valid prefix so subsequent appends continue cleanly.
    """
    os.makedirs(wal_dir, exist_ok=True)
    report = RecoveryReport(wal_dir=wal_dir)
    catalog: Optional[Catalog] = None
    for lsn, path in reversed(list_checkpoints(wal_dir)):
        try:
            catalog, ckpt_lsn, rows = load_checkpoint(path)
        except CheckpointError:
            report.invalid_checkpoints += 1
            continue
        report.checkpoint_path = path
        report.checkpoint_lsn = ckpt_lsn
        report.checkpoint_rows = rows
        break
    if catalog is None:
        # No valid checkpoint means the WAL was never truncated (only a
        # *successful* checkpoint truncates it), so replaying it from an
        # empty catalog reproduces the full history.
        catalog = Catalog()
    wal_path = os.path.join(wal_dir, WAL_FILENAME)
    scan = scan_wal(wal_path)
    for lsn, kind, data in scan.records:
        if lsn <= report.checkpoint_lsn:
            continue
        report.replayed_rows += apply_record(catalog, kind, data)
        report.replayed_records += 1
        PERSIST_RECOVERED_RECORDS.labels(kind=kind).inc()
    report.last_lsn = max(report.checkpoint_lsn, scan.last_lsn)
    report.torn = scan.torn
    if scan.torn:
        report.torn_bytes_dropped = scan.total_bytes - scan.valid_bytes
        PERSIST_TORN_RECORDS_DROPPED.inc()
        with open(wal_path, "r+b") as handle:
            handle.truncate(scan.valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    catalog.invalidate()
    PERSIST_RECOVERIES.labels(outcome=report.outcome).inc()
    return catalog, report


# --------------------------------------------------------------------------
# the engine: WAL + checkpoints behind one write pipeline
# --------------------------------------------------------------------------

class DurableEngine:
    """Ties a catalog to its WAL directory.

    Opening the engine *is* recovery: the constructor rebuilds the
    catalog from the newest valid checkpoint plus the WAL tail (see
    :attr:`report`) and reopens the log where it left off.

    The write pipeline (:meth:`log`) is the durability contract's
    enforcement point::

        with order_lock:  lsn = wal.append(record); apply()
        wal.commit(lsn)            # group-commit fsync, outside the lock
        on WalError:  undo(); wal.acknowledge_rollback(lsn); re-raise

    Appending and applying under one lock keeps the WAL's record order
    identical to the in-memory apply order; committing outside it is
    what lets concurrent writers share an fsync.  Undos deliberately run
    *without* the order lock: a failed fsync makes the WAL block every
    new append (and checkpoint) until each failed statement acknowledges
    its rollback, so the only concurrent catalog mutators during an undo
    are the other undoers of the same batch — whose truncate-to-length
    semantics commute — and taking the lock would deadlock against an
    appender already blocked inside it.  A statement is
    acknowledged (returns) only after :meth:`~WriteAheadLog.commit`, and
    a failed commit rolls the in-memory effect back — so the catalog
    observable to readers only ever runs *ahead* of disk by statements
    whose fate is still undecided, never behind it.
    """

    def __init__(self, wal_dir: str, commit_window_ms: float = 2.0,
                 checkpoint_interval: int = 0) -> None:
        os.makedirs(wal_dir, exist_ok=True)
        self.wal_dir = wal_dir
        self.checkpoint_interval = max(int(checkpoint_interval), 0)
        self.order_lock = threading.Lock()
        self.catalog, self.report = recover(wal_dir)
        self.wal = WriteAheadLog(os.path.join(wal_dir, WAL_FILENAME),
                                 commit_window_ms=commit_window_ms,
                                 last_lsn=self.report.last_lsn)
        self._since_checkpoint = 0
        #: WAL position of the newest on-disk checkpoint — records at or
        #: below this are only reachable through the checkpoint (the WAL
        #: was truncated), so a follower behind it needs a bootstrap.
        self.checkpoint_lsn = self.report.checkpoint_lsn
        #: Replication epoch persisted in the WAL dir (0 = never part of
        #: a replicated topology, or the first primary of one).
        self.epoch = read_epoch(wal_dir)

    # -- the write pipeline ---------------------------------------------

    def log(self, kind: str, data: Any, apply: Callable[[], Any],
            undo: Callable[[], None]) -> Any:
        """Durably execute one pre-validated statement.

        ``apply`` must not fail (validate before calling); ``undo`` must
        exactly reverse it and be safe under any interleaving of
        concurrent statements (truncate-to-length, not pop-by-value).
        Returns ``apply()``'s result after the record is fsynced.
        """
        with self.order_lock:
            lsn = self.wal.append(kind, data)
            result = apply()
        try:
            self.wal.commit(lsn)
        except WalError:
            try:
                undo()
            finally:
                self.wal.acknowledge_rollback(lsn)
            raise
        self._since_checkpoint += 1
        return result

    # -- checkpointing ---------------------------------------------------

    def maybe_checkpoint(self) -> Optional[CheckpointReport]:
        """Checkpoint when the configured record interval has elapsed."""
        if not self.checkpoint_interval:
            return None
        if self._since_checkpoint < self.checkpoint_interval:
            return None
        return self.checkpoint()

    def checkpoint(self) -> CheckpointReport:
        """Write a checkpoint of the current catalog, then truncate the
        WAL.  Holding ``order_lock`` across ``sync_all`` + write means
        the snapshot equals the durable prefix exactly — no statement
        can apply between the fsync and the copy."""
        with self.order_lock:
            try:
                self.wal.wait_rollbacks()
                self.wal.sync_all()
                report = write_checkpoint(self.catalog, self.wal_dir,
                                          self.wal.durable_lsn)
            except (CheckpointError, WalError):
                PERSIST_CHECKPOINTS.labels(outcome="failed").inc()
                raise
            PERSIST_CHECKPOINTS.labels(outcome="ok").inc()
            self.wal.truncate()
            self._since_checkpoint = 0
            self.checkpoint_lsn = report.lsn
            prune_checkpoints(self.wal_dir)
            return report

    def adopt(self, catalog: Catalog) -> CheckpointReport:
        """Take ownership of an externally built catalog (e.g. the data
        generator's) and immediately checkpoint it, so the adopted
        baseline is durable before the first statement runs."""
        self.catalog = catalog
        return self.checkpoint()

    def install_snapshot(self, catalog: Catalog, lsn: int) -> None:
        """Adopt a bootstrap snapshot a primary shipped as of ``lsn``.

        The caller must already have landed a valid on-disk checkpoint
        at ``lsn`` in this WAL directory (the replication bootstrap
        writes the shipped column files through the normal tmp + rename
        path and validates them with :func:`load_checkpoint`) — this
        method only swaps the catalog in and restarts the WAL after
        ``lsn``, so a crash at any point recovers to either the old or
        the new snapshot, never a mix.
        """
        with self.order_lock:
            self.catalog = catalog
            self.wal.reset_to(lsn)
            self.checkpoint_lsn = lsn
            self._since_checkpoint = 0
            prune_checkpoints(self.wal_dir)

    # -- replication epochs ----------------------------------------------

    def adopt_epoch(self, epoch: int) -> int:
        """Persist ``epoch`` if it is newer than ours; returns the
        current epoch.  Epochs never regress."""
        if epoch > self.epoch:
            write_epoch(self.wal_dir, epoch)
            self.epoch = epoch
        return self.epoch

    def bump_epoch(self, above: int = 0) -> int:
        """Mint and persist a new epoch strictly greater than both our
        own and ``above`` (the highest epoch learned from peers) —
        promotion's fencing token."""
        new_epoch = max(self.epoch, above) + 1
        write_epoch(self.wal_dir, new_epoch)
        self.epoch = new_epoch
        return new_epoch

    # -- lifecycle -------------------------------------------------------

    def simulate_crash(self, keep_bytes: Optional[int] = None) -> int:
        """Test hook: crash the WAL, keeping ``keep_bytes`` of the file
        (clamped to the durable..written range).  The engine is dead
        afterwards; build a new one on the same directory to recover."""
        return self.wal.simulate_crash(keep_bytes)

    def close(self) -> None:
        """Flush and close the WAL; idempotent."""
        self.wal.close()


# --------------------------------------------------------------------------
# canonical catalog bytes (the chaos harness's equality witness)
# --------------------------------------------------------------------------

def catalog_canonical_bytes(catalog: Catalog) -> bytes:
    """A canonical byte serialization of a catalog's full contents.

    Schemas and tables are visited in sorted-name order (so dict
    insertion order — which replay does not preserve for re-created
    tables — cannot leak in), columns in definition order, each
    contributing its name, type, and ship payload.  Two catalogs with
    identical data produce identical bytes; the ``durability-chaos``
    harness compares these across crash/recover cycles.
    """
    parts: List[bytes] = []
    for schema_name in sorted(catalog.schemas):
        schema = catalog.schemas[schema_name]
        parts.append(f"S:{schema.name}\n".encode())
        for table_name in sorted(schema.tables):
            table = schema.tables[table_name]
            parts.append(f"T:{table.name}\n".encode())
            for column in table.columns.values():
                payload = column.bat.to_ship_bytes()
                parts.append(
                    f"C:{column.name}:{column.mal_type.name}:"
                    f"{len(payload)}\n".encode())
                parts.append(payload)
    return b"".join(parts)
