"""MAL/MonetDB atom types and nil handling.

MonetDB calls its scalar types *atoms*.  The subset modelled here covers
what TPC-H style workloads need: ``bit`` (boolean), ``int``, ``lng``,
``flt``, ``dbl``, ``str``, ``oid`` (object identifier) and ``date``.

``nil`` (the MonetDB NULL) is represented by Python ``None`` in BAT tails
and variable values; :data:`nil` is an alias kept for readability at call
sites that talk about MAL semantics.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import TypeMismatchError

#: The MAL nil value.  MonetDB prints it as ``nil``; we store it as None.
nil = None


@dataclass(frozen=True)
class MalType:
    """A MAL atom type.

    Attributes:
        name: the MAL type name as printed in plans (``int``, ``lng``...).
        pytypes: Python types accepted for values of this atom.
        width: nominal width in bytes, used by memory accounting and the
            simulated cost model.
        caster: function converting a compatible Python value to the
            canonical representation.
    """

    name: str
    pytypes: tuple
    width: int
    caster: Callable[[Any], Any]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MalType({self.name})"

    def is_valid(self, value: Any) -> bool:
        """Return True if ``value`` is nil or an instance of this atom."""
        if value is nil:
            return True
        return isinstance(value, self.pytypes) and not (
            self is BIT and not isinstance(value, bool)
        )


def _cast_bit(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1"):
            return True
        if lowered in ("false", "f", "0"):
            return False
    raise TypeMismatchError(f"cannot cast {value!r} to bit")


def _cast_int(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise TypeMismatchError(f"cannot cast {value!r} to int")


def _cast_dbl(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise TypeMismatchError(f"cannot cast {value!r} to dbl")


def _cast_str(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float, bool, datetime.date)):
        return str(value)
    raise TypeMismatchError(f"cannot cast {value!r} to str")


def _cast_oid(value: Any) -> int:
    out = _cast_int(value)
    if out < 0:
        raise TypeMismatchError(f"oid must be non-negative, got {value!r}")
    return out


def _cast_date(value: Any) -> datetime.date:
    if isinstance(value, datetime.datetime):
        return value.date()
    if isinstance(value, datetime.date):
        return value
    if isinstance(value, str):
        return datetime.date.fromisoformat(value.strip())
    raise TypeMismatchError(f"cannot cast {value!r} to date")


BIT = MalType("bit", (bool,), 1, _cast_bit)
INT = MalType("int", (int,), 4, _cast_int)
LNG = MalType("lng", (int,), 8, _cast_int)
FLT = MalType("flt", (float,), 4, _cast_dbl)
DBL = MalType("dbl", (float,), 8, _cast_dbl)
STR = MalType("str", (str,), 8, _cast_str)
OID = MalType("oid", (int,), 8, _cast_oid)
DATE = MalType("date", (datetime.date,), 4, _cast_date)

_TYPES: Dict[str, MalType] = {
    t.name: t for t in (BIT, INT, LNG, FLT, DBL, STR, OID, DATE)
}

#: Numeric types ordered by promotion rank (int < lng < flt < dbl).
_NUMERIC_RANK = {INT.name: 0, LNG.name: 1, FLT.name: 2, DBL.name: 3}


def type_by_name(name: str) -> MalType:
    """Look up a MAL atom type by its printed name.

    Raises:
        TypeMismatchError: if the name is unknown.
    """
    try:
        return _TYPES[name]
    except KeyError:
        raise TypeMismatchError(f"unknown MAL type {name!r}") from None


def cast_value(value: Any, mal_type: MalType) -> Any:
    """Cast ``value`` to ``mal_type``, passing nil through unchanged."""
    if value is nil:
        return nil
    return mal_type.caster(value)


def infer_type(value: Any) -> MalType:
    """Infer the MAL atom type of a Python value.

    Booleans map to ``bit``, ints to ``int``, floats to ``dbl``, strings to
    ``str`` and dates to ``date``.  nil has no type and raises.
    """
    if value is nil:
        raise TypeMismatchError("cannot infer the type of nil")
    if isinstance(value, bool):
        return BIT
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return DBL
    if isinstance(value, str):
        return STR
    if isinstance(value, datetime.date):
        return DATE
    raise TypeMismatchError(f"no MAL type for Python value {value!r}")


def promote(left: MalType, right: MalType) -> MalType:
    """Return the common numeric type of two atoms (MAL-style promotion).

    Raises:
        TypeMismatchError: if either side is not numeric.
    """
    for side in (left, right):
        if side.name not in _NUMERIC_RANK:
            raise TypeMismatchError(f"{side.name} is not numeric")
    if _NUMERIC_RANK[left.name] >= _NUMERIC_RANK[right.name]:
        return left
    return right


def parse_value(text: str, mal_type: Optional[MalType] = None) -> Any:
    """Parse a MAL literal as printed in plans and traces.

    ``nil`` parses to nil; quoted strings lose their quotes; otherwise the
    text is cast to ``mal_type`` when given, or the narrowest matching type
    (int, then dbl, then str) when not.
    """
    stripped = text.strip()
    if stripped == "nil":
        return nil
    if stripped.startswith('"') and stripped.endswith('"') and len(stripped) >= 2:
        return _unescape(stripped[1:-1])
    if mal_type is not None:
        return cast_value(stripped, mal_type)
    for candidate in (INT, DBL):
        try:
            return candidate.caster(stripped)
        except (TypeMismatchError, ValueError):
            continue
    if stripped in ("true", "false"):
        return stripped == "true"
    return stripped


def format_value(value: Any) -> str:
    """Format a value the way MAL plans print literals."""
    if value is nil:
        return "nil"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return '"' + _escape(value) + '"'
    if isinstance(value, datetime.date):
        return '"' + value.isoformat() + '"'
    return str(value)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
            else:
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)
