"""Per-row reference kernels for the bulk execution layer in ``bat.py``.

These free functions preserve the original row-at-a-time kernel
implementations (lambda dispatch, per-element casts, index rebuilt on
every join) that :mod:`repro.storage.bat` replaced with bulk
primitives.  They exist for two reasons:

* ``tests/test_kernel_parity.py`` runs every rewritten kernel against
  these references over randomized inputs — the bulk kernels must be
  observationally identical;
* ``benchmarks/bench_e9_kernels.py`` measures the bulk kernels against
  them, which is what makes the recorded speedups meaningful: the
  baseline *is* the pre-rewrite code, not a strawman.

One deliberate deviation: descending :func:`sort` with two or more nil
tails crashed in the original (its ordering adapter compared ``None``
with ``None``).  The reference implements the well-defined semantics
the rewritten kernel uses — nils sort first ascending, last descending,
original order preserved among equals — since no behaviour existed to
preserve.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import StorageError, TypeMismatchError
from repro.storage.bat import BAT
from repro.storage.types import (
    BIT, DBL, LNG, OID, MalType, cast_value, infer_type, nil, promote,
)

_OPS: dict = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _like(src: BAT, heads: Optional[List[int]], tail: List[Any],
          tail_type: Optional[MalType] = None, hseqbase: int = 0) -> BAT:
    out = BAT(tail_type or src.tail_type, hseqbase=hseqbase)
    out.tail = tail
    out.head = heads
    return out


def _filter(bat: BAT, predicate: Callable[[Any], bool]) -> BAT:
    heads: List[int] = []
    tail: List[Any] = []
    for oid, value in bat.items():
        if value is nil:
            continue
        if predicate(value):
            heads.append(oid)
            tail.append(value)
    return _like(bat, heads, tail)


def select(bat: BAT, low: Any, high: Any = "__unset__",
           include_low: bool = True, include_high: bool = True) -> BAT:
    """Reference ``algebra.select`` (point and range forms)."""
    if high == "__unset__":
        return _filter(bat, lambda v: v == low)
    if low is nil:
        low_ok: Callable[[Any], bool] = lambda v: True
    elif include_low:
        low_ok = lambda v: v >= low
    else:
        low_ok = lambda v: v > low
    if high is nil:
        high_ok: Callable[[Any], bool] = lambda v: True
    elif include_high:
        high_ok = lambda v: v <= high
    else:
        high_ok = lambda v: v < high
    return _filter(bat, lambda v: low_ok(v) and high_ok(v))


def thetaselect(bat: BAT, value: Any, op: str) -> BAT:
    """Reference ``algebra.thetaselect``."""
    try:
        cmp = _OPS[op]
    except KeyError:
        raise StorageError(f"unknown theta operator {op!r}") from None
    return _filter(bat, lambda v: cmp(v, value))


def likeselect(bat: BAT, pattern: str) -> BAT:
    """Reference SQL LIKE selection."""
    if bat.tail_type.name != "str":
        raise TypeMismatchError("likeselect requires a str tail")
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    return _filter(bat, lambda v: regex.match(v) is not None)


def leftjoin(bat: BAT, other: BAT) -> BAT:
    """Reference ``algebra.leftjoin`` (index rebuilt on every call)."""
    heads: List[int] = []
    tail: List[Any] = []
    if other.head is None:
        base, size = other.hseqbase, len(other.tail)
        for oid, value in bat.items():
            if value is nil:
                continue
            pos = int(value) - base
            if 0 <= pos < size:
                heads.append(oid)
                tail.append(other.tail[pos])
    else:
        index: dict = {}
        for pos, hoid in enumerate(other.head):
            index.setdefault(hoid, []).append(pos)
        for oid, value in bat.items():
            if value is nil:
                continue
            for pos in index.get(value, ()):
                heads.append(oid)
                tail.append(other.tail[pos])
    return _like(bat, heads, tail, tail_type=other.tail_type)


def leftfetchjoin(bat: BAT, other: BAT) -> BAT:
    """Reference ``algebra.leftfetchjoin`` (errors on misses)."""
    heads: List[int] = []
    tail: List[Any] = []
    base = other.hseqbase if other.head is None else None
    index = None
    if other.head is not None:
        index = {hoid: pos for pos, hoid in enumerate(other.head)}
    for oid, value in bat.items():
        if value is nil:
            heads.append(oid)
            tail.append(nil)
            continue
        if base is not None:
            pos = int(value) - base
            if not (0 <= pos < len(other.tail)):
                raise StorageError(f"fetchjoin miss for oid {value}")
        else:
            try:
                pos = index[value]  # type: ignore[index]
            except KeyError:
                raise StorageError(f"fetchjoin miss for oid {value}") from None
        heads.append(oid)
        tail.append(other.tail[pos])
    return _like(bat, heads, tail, tail_type=other.tail_type)


def semijoin(bat: BAT, other: BAT) -> BAT:
    """Reference ``algebra.semijoin`` (head set rebuilt on every call)."""
    other_heads = set(other.heads())
    heads: List[int] = []
    tail: List[Any] = []
    for oid, value in bat.items():
        if oid in other_heads:
            heads.append(oid)
            tail.append(value)
    return _like(bat, heads, tail)


def kdifference(bat: BAT, other: BAT) -> BAT:
    """Reference ``algebra.kdifference``."""
    other_heads = set(other.heads())
    heads: List[int] = []
    tail: List[Any] = []
    for oid, value in bat.items():
        if oid not in other_heads:
            heads.append(oid)
            tail.append(value)
    return _like(bat, heads, tail)


def sort(bat: BAT, reverse: bool = False) -> BAT:
    """Reference stable sort: nils first ascending, last descending."""
    tail = bat.tail
    non_nil = [i for i, v in enumerate(tail) if v is not nil]
    nils = [i for i, v in enumerate(tail) if v is nil]
    non_nil.sort(key=lambda i: tail[i], reverse=reverse)
    order = non_nil + nils if reverse else nils + non_nil
    heads = [bat.head_at(i) for i in order]
    return _like(bat, heads, [tail[i] for i in order])


def group(bat: BAT) -> Tuple[BAT, BAT, BAT]:
    """Reference ``group.new``: (groups, extents, histogram)."""
    mapping: dict = {}
    group_ids: List[int] = []
    extents: List[int] = []
    hist: List[int] = []
    for oid, value in bat.items():
        key = ("\0nil",) if value is nil else value
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            extents.append(oid)
            hist.append(0)
        hist[gid] += 1
        group_ids.append(gid)
    groups = BAT(OID, group_ids, hseqbase=bat.hseqbase)
    return groups, BAT(OID, extents), BAT(LNG, hist)


def refine_group(bat: BAT, groups: BAT) -> Tuple[BAT, BAT, BAT]:
    """Reference ``group.derive``."""
    if len(groups) != len(bat):
        raise StorageError("group refinement length mismatch")
    mapping: dict = {}
    group_ids: List[int] = []
    extents: List[int] = []
    hist: List[int] = []
    for (oid, value), gid_old in zip(bat.items(), groups.tail):
        key = (gid_old, ("\0nil",) if value is nil else value)
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            extents.append(oid)
            hist.append(0)
        hist[gid] += 1
        group_ids.append(gid)
    out_groups = BAT(OID, group_ids, hseqbase=bat.hseqbase)
    return out_groups, BAT(OID, extents), BAT(LNG, hist)


def aggregate(bat: BAT, func: str) -> Any:
    """Reference scalar aggregate."""
    if func == "count":
        return len(bat.tail)
    values = [v for v in bat.tail if v is not nil]
    if not values:
        return nil
    if func == "sum":
        return sum(values)
    if func == "min":
        return min(values)
    if func == "max":
        return max(values)
    if func == "avg":
        return float(sum(values)) / len(values)
    raise StorageError(f"unknown aggregate {func!r}")


def grouped_aggregate(bat: BAT, groups: BAT, ngroups: int, func: str) -> BAT:
    """Reference per-group aggregate (bucket lists, then fold)."""
    if len(groups) != len(bat):
        raise StorageError("grouped aggregate length mismatch")
    buckets: List[List[Any]] = [[] for _ in range(ngroups)]
    counts = [0] * ngroups
    for value, gid in zip(bat.tail, groups.tail):
        gid = int(gid)
        counts[gid] += 1
        if value is not nil:
            buckets[gid].append(value)
    out_type = bat.tail_type
    results: List[Any] = []
    if func == "count":
        results = list(counts)
        out_type = LNG
    else:
        for bucket in buckets:
            if not bucket:
                results.append(nil)
            elif func == "sum":
                results.append(sum(bucket))
            elif func == "min":
                results.append(min(bucket))
            elif func == "max":
                results.append(max(bucket))
            elif func == "avg":
                results.append(float(sum(bucket)) / len(bucket))
            else:
                raise StorageError(f"unknown aggregate {func!r}")
        if func == "avg":
            out_type = DBL
    out = BAT(out_type)
    out.tail = results
    return out


def calc(bat: BAT, other: BAT, op: str,
         out_type: Optional[MalType] = None) -> BAT:
    """Reference elementwise binary op between two BATs."""
    if len(other) != len(bat):
        raise StorageError("batcalc length mismatch")
    fn = _calc_fn(op)
    tail = [
        nil if (a is nil or b is nil) else fn(a, b)
        for a, b in zip(bat.tail, other.tail)
    ]
    return _calc_out(bat, tail, op, out_type, other.tail_type)


def calc_const(bat: BAT, value: Any, op: str, swapped: bool = False,
               out_type: Optional[MalType] = None) -> BAT:
    """Reference elementwise binary op against a constant."""
    fn = _calc_fn(op)
    if value is nil:
        tail: List[Any] = [nil] * len(bat.tail)
    elif swapped:
        tail = [nil if v is nil else fn(value, v) for v in bat.tail]
    else:
        tail = [nil if v is nil else fn(v, value) for v in bat.tail]
    other_type = bat.tail_type if value is nil else infer_type(value)
    return _calc_out(bat, tail, op, out_type, other_type)


def _calc_out(bat: BAT, tail: List[Any], op: str,
              out_type: Optional[MalType], other_type: MalType) -> BAT:
    if out_type is None:
        if op in _OPS or op in ("and", "or"):
            out_type = BIT
        elif op == "/":
            out_type = DBL
        else:
            try:
                out_type = promote(bat.tail_type, other_type)
            except TypeMismatchError:
                out_type = bat.tail_type
    heads = None if bat.head is None else list(bat.head)
    out = BAT(out_type, hseqbase=bat.hseqbase)
    out.head = heads
    out.tail = [cast_value(v, out_type) for v in tail]
    return out


def _calc_fn(op: str) -> Callable[[Any, Any], Any]:
    if op in _OPS:
        return _OPS[op]
    table: dict = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b if b else nil,
        "%": lambda a, b: a % b if b else nil,
        "and": lambda a, b: a and b,
        "or": lambda a, b: a or b,
    }
    try:
        return table[op]
    except KeyError:
        raise StorageError(f"unknown calc operator {op!r}") from None


def bat_bytes(bat: BAT) -> int:
    """Reference (uncached) memory-footprint computation."""
    head_bytes = 0 if bat.head is None else 8 * len(bat.head)
    if bat.tail_type.name == "str":
        tail_bytes = sum(8 + len(v) for v in bat.tail if v is not nil)
        tail_bytes += 8 * sum(1 for v in bat.tail if v is nil)
    else:
        tail_bytes = bat.tail_type.width * len(bat.tail)
    return head_bytes + tail_bytes
