"""Catalog persistence: save/load a whole database as one JSON file.

MonetDB persists BATs in its ``dbfarm``; at this reproduction's scale a
single self-describing JSON document is the honest equivalent — it keeps
examples and benchmark setups reloadable without re-running the data
generator.  Dates are tagged strings (``@date:YYYY-MM-DD``); nil is JSON
``null``.
"""

from __future__ import annotations

import datetime
import json
import os
import zlib
from typing import Any

from repro.errors import StorageError
from repro.storage.catalog import Catalog
from repro.storage.types import type_by_name

_FORMAT_VERSION = 1
_DATE_TAG = "@date:"
#: Trailer appended after the JSON document: a whole-file checksum so
#: bit-rot is detected instead of half-loaded.  Files without it (saved
#: by older versions) still load.
_CRC_PREFIX = "\n#crc32="


def _encode(value: Any) -> Any:
    if isinstance(value, datetime.date):
        return _DATE_TAG + value.isoformat()
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, str) and value.startswith(_DATE_TAG):
        return datetime.date.fromisoformat(value[len(_DATE_TAG):])
    return value


def save_catalog(catalog: Catalog, path: str) -> int:
    """Write every schema/table/column to ``path``; returns total rows.

    The write is atomic: the document goes to a temp file in the same
    directory, is fsynced, then renamed over ``path`` — a crash
    mid-save leaves the previous catalog intact, never a truncated one.
    """
    document = {"version": _FORMAT_VERSION, "schemas": []}
    total_rows = 0
    for schema in catalog.schemas.values():
        schema_doc = {"name": schema.name, "tables": []}
        for table in schema.tables.values():
            columns = []
            for column in table.columns.values():
                columns.append({
                    "name": column.name,
                    "type": column.mal_type.name,
                    "values": [_encode(v) for v in column.bat.tail],
                })
            schema_doc["tables"].append(
                {"name": table.name, "columns": columns}
            )
            total_rows += table.row_count()
        document["schemas"].append(schema_doc)
    text = json.dumps(document)
    text += f"{_CRC_PREFIX}{zlib.crc32(text.encode('utf-8')):08x}\n"
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    return total_rows


def load_catalog(path: str) -> Catalog:
    """Rebuild a catalog saved by :func:`save_catalog`.

    Raises:
        StorageError: on a checksum mismatch, a version mismatch, or any
            structural problem in the document (wrong shapes or missing
            keys raise here as typed errors, never as a leaked
            ``KeyError``/``TypeError``).
    """
    with open(path) as handle:
        text = handle.read()
    crc_at = text.rfind(_CRC_PREFIX)
    if crc_at != -1:
        body, trailer = text[:crc_at], text[crc_at + len(_CRC_PREFIX):]
        try:
            expected = int(trailer.strip(), 16)
        except ValueError:
            raise StorageError(
                f"corrupt catalog file {path!r}: malformed checksum "
                f"trailer") from None
        actual = zlib.crc32(body.encode("utf-8"))
        if actual != expected:
            raise StorageError(
                f"corrupt catalog file {path!r}: checksum mismatch "
                f"(expected {expected:08x}, computed {actual:08x})")
        text = body
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt catalog file: {exc}") from None
    if not isinstance(document, dict):
        raise StorageError(
            f"malformed catalog file {path!r}: expected a JSON object, "
            f"got {type(document).__name__}")
    if document.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported catalog format version {document.get('version')!r}"
        )
    catalog = Catalog()
    try:
        for schema_doc in document.get("schemas", []):
            name = schema_doc["name"]
            if name.lower() in catalog.schemas:
                schema = catalog.schema(name)
            else:
                schema = catalog.create_schema(name)
            for table_doc in schema_doc.get("tables", []):
                column_docs = table_doc["columns"]
                if not column_docs:
                    raise StorageError(
                        f"table {table_doc['name']!r} has no columns"
                    )
                spec = [
                    (c["name"], type_by_name(c["type"])) for c in column_docs
                ]
                table = schema.create_table(table_doc["name"], spec)
                lengths = {len(c["values"]) for c in column_docs}
                if len(lengths) > 1:
                    raise StorageError(
                        f"table {table_doc['name']!r} has ragged columns"
                    )
                for column_doc, column in zip(column_docs,
                                              table.columns.values()):
                    column.bat.extend(
                        _decode(v) for v in column_doc["values"])
    except StorageError:
        raise
    except (KeyError, TypeError, AttributeError, ValueError) as exc:
        raise StorageError(
            f"malformed catalog document in {path!r}: "
            f"{type(exc).__name__}: {exc}") from None
    return catalog
