"""Process-based partition worker pool: mitosis fragments on real cores.

The dataflow schedulers model parallelism, but until this module every
kernel ran inside one GIL-bound process — the visualization showed
parallelism the engine did not have.  :class:`PartitionWorkerPool`
executes the partition fragments of a mitosis-rewritten plan
one-partition-per-worker in forked child processes:

1. :func:`repro.mal.optimizer.mitosis.extract_fragments` turns the plan
   into self-contained fragments with declared inputs and outputs;
2. a *prologue* pre-pass executes the pure ancestors of the fragments
   (``sql.mvc``, the 7-argument partition binds, unpartitioned columns)
   in the parent, against the catalog;
3. each fragment's inputs are serialized through the memoized
   :meth:`~repro.storage.bat.BAT.to_ship_bytes` cache and shipped over a
   pipe to a persistent worker process, which runs the member
   instructions (selections, joins, batcalc, aggregate partials) and
   ships back declared outputs in full — intermediates nobody outside
   the fragment reads return as *shadows* (type, row count and byte
   footprint only);
4. :meth:`precompute` returns a ``{pc: outputs}`` map; the interpreter
   and both schedulers replay the plan binding those precomputed values
   instead of invoking the kernels, so scheduling decisions, the cost
   model, rows and RSS accounting — the whole trace shape — stay
   byte-identical to an in-process run while the heavy kernels actually
   executed on other cores.  The residual plan (``mat.pack`` merges,
   aggregate fold chains, result-set construction) runs in the parent
   as before.

The pool falls back to in-process execution (returning an empty map and
counting ``repro_mpool_fallbacks_total``) for plans with no fragments,
fewer than two workers, shipped rows under ``min_rows``, or inputs
produced by impure instructions.

Lifecycle supervision propagates into workers: the task payload carries
the query's deadline and RSS budget (checked between instructions in
the worker), the parent polls its :class:`~repro.server.lifecycle.QueryContext`
while collecting replies, and an abort kills the busy workers so remote
work actually stops.  A crashed or killed worker surfaces as a typed
:class:`~repro.errors.WorkerCrashError` — never a hang — and the pool
re-forks the worker for the next query.

Fault sites (see :mod:`repro.faults`): ``mpool.worker`` (crash, stall)
and ``mpool.ship`` (truncate, latency), decided in the parent in
fragment order so chaos journals replay deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import (
    MalRuntimeError,
    PartitionShipError,
    WorkerCrashError,
)
from repro.faults.plan import ACTIVE
from repro.mal.ast import MalInstruction, MalProgram, Var
from repro.mal.interpreter import EvalContext, execute_instruction
from repro.mal.optimizer.mitosis import PlanFragment, extract_fragments
from repro.metrics.families import (
    MPOOL_FALLBACKS,
    MPOOL_MERGE_USEC,
    MPOOL_SHIP_BYTES,
    MPOOL_TASKS,
    MPOOL_WORKER_RESTARTS,
    MPOOL_WORKERS,
)
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog
from repro.storage.types import type_by_name

if TYPE_CHECKING:  # pragma: no cover — avoids a repro.server import cycle
    from repro.server.lifecycle import QueryContext

__all__ = ["PartitionWorkerPool", "ShadowBAT", "DEFAULT_MIN_ROWS"]

#: Plans shipping fewer total partition rows than this run in-process:
#: below it, fork/pickle/pipe overhead dwarfs the kernel work.
DEFAULT_MIN_ROWS = 2048

#: ``sql`` is catalog access; only these three are safe to re-execute in
#: the parent prologue (pure reads).  Everything result-set shaped
#: (``sql.resultSet``/``rsColumn``/``exportResult``/``append``) is not.
_PURE_SQL = frozenset(("mvc", "bind", "tid"))
_PURE_MODULES = frozenset((
    "algebra", "batcalc", "aggr", "bat", "group", "calc", "mat",
    "mtime", "batmtime", "batstr", "language",
))


def _prologue_safe(instr: MalInstruction) -> bool:
    if instr.module == "sql":
        return instr.function in _PURE_SQL
    return instr.module in _PURE_MODULES


class ShadowBAT(BAT):
    """Stand-in for a worker-side intermediate the parent never reads.

    Carries the real result's row count and byte footprint so the cost
    model, ``rows`` fields and RSS accounting in replayed traces match
    an in-process run exactly, without shipping the payload back.  Only
    ``language.pass`` ever receives one as an argument.
    """

    __slots__ = ("_shadow_rows", "_shadow_bytes")

    def __init__(self, tail_type, rows: int, footprint: int) -> None:
        super().__init__(tail_type)
        self._shadow_rows = rows
        self._shadow_bytes = footprint

    def __len__(self) -> int:
        return self._shadow_rows

    def count(self) -> int:
        return self._shadow_rows

    def bytes(self) -> int:
        return self._shadow_bytes


# --------------------------------------------------------------------------
# wire encoding (parent <-> worker, over a multiprocessing Pipe)
# --------------------------------------------------------------------------

def _encode_value(value: Any) -> Tuple[str, Any]:
    if isinstance(value, BAT):
        return ("bat", value.to_ship_bytes())
    return ("val", value)


def _decode_value(encoded: Tuple[str, Any]) -> Any:
    tag, payload = encoded
    if tag == "bat":
        return BAT.from_ship_bytes(payload)
    return payload


def _strip(instr: MalInstruction) -> MalInstruction:
    """A picklable copy: ``impl_cache`` may hold closure-local kernels."""
    return MalInstruction(results=instr.results, module=instr.module,
                          function=instr.function, args=instr.args,
                          pc=instr.pc)


def _worker_env_bytes(env: Dict[str, Any]) -> int:
    return sum(v.bytes() for v in env.values() if isinstance(v, BAT))


def _run_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one fragment task inside the worker process."""
    stall_ms = task.get("stall_ms")
    if stall_ms:
        time.sleep(stall_ms / 1000.0)
    ctx = EvalContext(None, None)
    try:
        for name, encoded in task["inputs"].items():
            ctx.env[name] = _decode_value(encoded)
    except Exception as exc:
        return {"ok": False, "kind": "decode",
                "message": f"partition shipment corrupt: {exc}"}
    deadline = task.get("deadline")
    rss_limit = task.get("rss_limit")
    full = set(task["full"])
    try:
        for instr in task["instructions"]:
            if deadline is not None and time.monotonic() >= deadline:
                return {"ok": False, "kind": "deadline",
                        "message": f"worker pc={instr.pc} past deadline"}
            if rss_limit is not None and \
                    _worker_env_bytes(ctx.env) > rss_limit:
                return {"ok": False, "kind": "rss",
                        "message": f"worker pc={instr.pc} over rss budget"}
            execute_instruction(ctx, instr)
    except MalRuntimeError as exc:
        return {"ok": False, "kind": "error", "message": str(exc)}
    except Exception as exc:  # pragma: no cover — defensive
        return {"ok": False, "kind": "error",
                "message": f"{type(exc).__name__}: {exc}"}
    values: Dict[str, Tuple] = {}
    for instr in task["instructions"]:
        for name in instr.results:
            value = ctx.env.get(name)
            if name in full or not isinstance(value, BAT):
                values[name] = _encode_value(value)
            else:
                values[name] = ("shadow", value.tail_type.name,
                                len(value), value.bytes())
    return {"ok": True, "values": values}


def _worker_main(conn) -> None:
    """Worker process loop: recv task, run, send reply, repeat."""
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            conn.send(_run_task(task))
        except (BrokenPipeError, OSError):
            return


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


# --------------------------------------------------------------------------
# the pool
# --------------------------------------------------------------------------

class PartitionWorkerPool:
    """A pool of forked partition workers (see the module docstring).

    Args:
        workers: worker process count; below 2 the pool always falls
            back to in-process execution.
        min_rows: plans shipping fewer total partition rows than this
            run in-process (0 forces the pool, used by tests/chaos).
        poll_s: parent-side reply poll slice; bounds how often the
            query's lifecycle context is re-checked while collecting.
    """

    def __init__(self, workers: int = 2, min_rows: int = DEFAULT_MIN_ROWS,
                 poll_s: float = 0.05) -> None:
        self.workers = int(workers)
        self.min_rows = int(min_rows)
        self.poll_s = poll_s
        self._workers: List[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "PartitionWorkerPool":
        """Fork the worker processes (idempotent); returns ``self``."""
        with self._lock:
            self._closed = False
            self._ensure_workers_locked()
        return self

    def _spawn_locked(self) -> _Worker:
        mp = multiprocessing.get_context("fork")
        parent_conn, child_conn = mp.Pipe()
        process = mp.Process(target=_worker_main, args=(child_conn,),
                             daemon=True, name="repro-mpool-worker")
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_workers_locked(self) -> None:
        if self.workers < 2 or self._closed:
            return
        for index in range(len(self._workers), self.workers):
            self._workers.append(self._spawn_locked())
        for index, worker in enumerate(self._workers):
            if not worker.alive:
                worker.conn.close()
                self._workers[index] = self._spawn_locked()
                MPOOL_WORKER_RESTARTS.inc()
        MPOOL_WORKERS.set(len(self._workers))

    def _kill_locked(self, worker: _Worker) -> None:
        try:
            worker.process.kill()
            worker.process.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover — already dead
            pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _reset_locked(self) -> None:
        """Kill every worker and re-fork: clean state after a failure."""
        for worker in self._workers:
            self._kill_locked(worker)
        self._workers = []
        self._ensure_workers_locked()

    def close(self) -> None:
        """Stop every worker (idempotent); the pool can be restarted."""
        with self._lock:
            self._closed = True
            for worker in self._workers:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                if worker.alive:
                    self._kill_locked(worker)
                else:
                    try:
                        worker.conn.close()
                    except OSError:  # pragma: no cover
                        pass
            self._workers = []
            MPOOL_WORKERS.set(0)

    def __enter__(self) -> "PartitionWorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def alive(self) -> int:
        """Number of currently live worker processes."""
        with self._lock:
            return sum(1 for w in self._workers if w.alive)

    # -- the main entry point -------------------------------------------

    def precompute(self, program: MalProgram, catalog: Catalog,
                   context: Optional["QueryContext"] = None,
                   ) -> Dict[int, List[Any]]:
        """Run the plan's partition fragments on the pool.

        Returns ``{pc: [outputs]}`` for every fragment member
        instruction, or ``{}`` when the plan should run in-process.
        Raises typed errors (:class:`~repro.errors.WorkerCrashError`,
        :class:`~repro.errors.PartitionShipError`, lifecycle errors) on
        failure; the pool resets itself so the next query is clean.
        """
        if self.workers < 2 or self._closed:
            MPOOL_FALLBACKS.labels(reason="workers").inc()
            return {}
        fragments = extract_fragments(program)
        if not fragments:
            MPOOL_FALLBACKS.labels(reason="no-fragments").inc()
            return {}
        prologue = self._prologue_instructions(program, fragments)
        if prologue is None:
            MPOOL_FALLBACKS.labels(reason="impure-input").inc()
            return {}
        with self._lock:
            self._ensure_workers_locked()
            if len(self._workers) < 2:
                MPOOL_FALLBACKS.labels(reason="workers").inc()
                return {}
            ctx = EvalContext(catalog, program)
            for instr in prologue:
                if context is not None:
                    context.check(ctx.rss_bytes())
                execute_instruction(ctx, instr)
            shipped_rows = 0
            for fragment in fragments:
                for name in fragment.inputs:
                    value = ctx.env.get(name)
                    if isinstance(value, BAT):
                        shipped_rows += len(value)
            if shipped_rows < self.min_rows:
                MPOOL_FALLBACKS.labels(reason="small-plan").inc()
                return {}
            return self._dispatch_locked(program, fragments, ctx, context)

    # -- internals ------------------------------------------------------

    @staticmethod
    def _prologue_instructions(
            program: MalProgram,
            fragments: List[PlanFragment]) -> Optional[List[MalInstruction]]:
        """The pure ancestor closure of every fragment input, in pc
        order — or None when an input depends on an impure instruction."""
        sites = program.def_sites()
        instructions = {i.pc: i for i in program.instructions}
        needed: List[int] = []
        seen = set()
        stack = [name for f in fragments for name in f.inputs]
        while stack:
            name = stack.pop()
            pc = sites.get(name)
            if pc is None or pc in seen:
                continue
            seen.add(pc)
            instr = instructions[pc]
            if not _prologue_safe(instr):
                return None
            needed.append(pc)
            for arg in instr.args:
                if isinstance(arg, Var):
                    stack.append(arg.name)
        return [instructions[pc] for pc in sorted(needed)]

    def _dispatch_locked(self, program: MalProgram,
                         fragments: List[PlanFragment], ctx: EvalContext,
                         context: Optional["QueryContext"],
                         ) -> Dict[int, List[Any]]:
        fault_plan = ACTIVE.plan
        instructions = {i.pc: i for i in program.instructions}
        tasks: List[Dict[str, Any]] = []
        kill_first: List[int] = []  # task indices hit by a crash fault
        deadline = context.deadline if context is not None else None
        rss_limit = (context.rss_budget_bytes
                     if context is not None else None)
        to_worker = 0
        for index, fragment in enumerate(fragments):
            inputs: Dict[str, Tuple] = {}
            for name in fragment.inputs:
                encoded = _encode_value(ctx.env[name])
                if encoded[0] == "bat":
                    to_worker += len(encoded[1])
                inputs[name] = encoded
            task = {
                "instructions": [_strip(instructions[pc])
                                 for pc in fragment.pcs],
                "inputs": inputs,
                "full": list(fragment.outputs),
                "deadline": deadline,
                "rss_limit": rss_limit,
                "stall_ms": None,
            }
            # fault decisions happen here, in fragment order, so the
            # journal is deterministic regardless of reply timing
            if fault_plan is not None:
                worker_fault = fault_plan.decide(
                    "mpool.worker", detail=str(fragment.partition))
                if worker_fault is not None:
                    if worker_fault.action == "crash":
                        kill_first.append(index)
                    elif worker_fault.action == "stall":
                        task["stall_ms"] = worker_fault.value or 50
                ship_fault = fault_plan.decide(
                    "mpool.ship", detail=str(fragment.partition))
                if ship_fault is not None:
                    if ship_fault.action == "truncate":
                        self._truncate_task(task)
                    elif ship_fault.action == "latency":
                        task["latency_ms"] = ship_fault.value or 5
            tasks.append(task)
        MPOOL_SHIP_BYTES.labels(direction="to-worker").inc(to_worker)
        try:
            replies = self._collect(tasks, kill_first, context, ctx)
        except BaseException:
            # typed failure or abort: leave no half-busy workers behind
            self._reset_locked()
            raise
        began = time.perf_counter()
        from_worker = 0
        values: Dict[str, Any] = {}
        for reply in replies:
            for name, encoded in reply["values"].items():
                if encoded[0] == "shadow":
                    _tag, type_name, rows, footprint = encoded
                    values[name] = ShadowBAT(type_by_name(type_name),
                                             rows, footprint)
                else:
                    if encoded[0] == "bat":
                        from_worker += len(encoded[1])
                    values[name] = _decode_value(encoded)
        precomputed: Dict[int, List[Any]] = {}
        for fragment in fragments:
            for pc in fragment.pcs:
                instr = instructions[pc]
                precomputed[pc] = [values[name] for name in instr.results]
        MPOOL_SHIP_BYTES.labels(direction="from-worker").inc(from_worker)
        MPOOL_MERGE_USEC.observe((time.perf_counter() - began) * 1e6)
        return precomputed

    @staticmethod
    def _truncate_task(task: Dict[str, Any]) -> None:
        """Corrupt the task's largest BAT payload (ship fault)."""
        largest, size = None, -1
        for name, (tag, payload) in task["inputs"].items():
            if tag == "bat" and len(payload) > size:
                largest, size = name, len(payload)
        if largest is not None:
            _tag, payload = task["inputs"][largest]
            task["inputs"][largest] = ("bat", payload[: size // 2])

    def _collect(self, tasks: List[Dict[str, Any]], kill_first: List[int],
                 context: Optional["QueryContext"], ctx: EvalContext,
                 ) -> List[Dict[str, Any]]:
        """Static round-robin dispatch, one outstanding task per worker.

        Bounding in-flight tasks to one per worker keeps the pipes free
        of reply backlog (no deadlock between a parent still sending
        and a worker blocked writing a large reply).
        """
        nworkers = len(self._workers)
        queues: List[deque] = [deque() for _ in range(nworkers)]
        for index in range(len(tasks)):
            queues[index % nworkers].append(index)
        for index in kill_first:
            # the crash fault kills the real process; detection below is
            # the same code path as a genuine worker death
            self._kill_locked(self._workers[index % nworkers])
        inflight: Dict[Any, Tuple[int, int]] = {}  # conn -> (widx, tidx)
        replies: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        outstanding = len(tasks)

        def send_next(widx: int) -> None:
            if not queues[widx]:
                return
            tidx = queues[widx].popleft()
            task = tasks[tidx]
            latency_ms = task.pop("latency_ms", None)
            if latency_ms:
                time.sleep(latency_ms / 1000.0)
            worker = self._workers[widx]
            try:
                worker.conn.send(task)
            except (BrokenPipeError, OSError):
                raise self._crash(widx, tidx)
            inflight[worker.conn] = (widx, tidx)

        for widx in range(nworkers):
            send_next(widx)
        while outstanding:
            if context is not None:
                context.check(ctx.rss_bytes())
            if not inflight:  # pragma: no cover — defensive
                raise MalRuntimeError("partition pool lost its tasks")
            for conn in _conn_wait(list(inflight), timeout=self.poll_s):
                widx, tidx = inflight.pop(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    raise self._crash(widx, tidx)
                self._check_reply(reply, context)
                replies[tidx] = reply
                MPOOL_TASKS.labels(outcome="ok").inc()
                outstanding -= 1
                send_next(widx)
        return [r for r in replies if r is not None]

    def _crash(self, widx: int, tidx: int) -> WorkerCrashError:
        MPOOL_TASKS.labels(outcome="crash").inc()
        pid = self._workers[widx].process.pid
        return WorkerCrashError(
            f"partition worker {widx} (pid {pid}) died executing "
            f"fragment {tidx}; pool will restart it")

    @staticmethod
    def _check_reply(reply: Dict[str, Any],
                     context: Optional["QueryContext"]) -> None:
        if reply.get("ok"):
            return
        MPOOL_TASKS.labels(outcome="error").inc()
        kind = reply.get("kind", "error")
        message = reply.get("message", "worker task failed")
        if kind == "decode":
            raise PartitionShipError(message)
        if kind in ("deadline", "rss") and context is not None:
            # route through the context so the cancellation is typed and
            # counted exactly like a parent-side budget violation
            context.cancel(message, source="deadline" if kind == "deadline"
                           else "rss-budget")
            context.check()
        raise MalRuntimeError(message)
