"""Sequential MAL interpreter with profiling hooks and a cost model.

The interpreter executes a :class:`~repro.mal.ast.MalProgram` against a
:class:`~repro.storage.Catalog`.  Every instruction execution produces an
:class:`InstructionRun` record carrying the fields the MonetDB profiler
reports (pc, thread, start/done timestamps in microseconds, elapsed usec,
rss) — listeners such as :class:`repro.profiler.Profiler` turn those into
trace events.

Timing is *virtual* by default: a deterministic :class:`CostModel` assigns
each instruction a duration from its operator class and input/output
cardinalities, so traces are reproducible across machines.  Passing
``realtime_scale > 0`` additionally sleeps proportionally to the modelled
cost, which makes threaded dataflow runs exhibit genuine wall-clock
parallelism (sleeps release the GIL).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple)

from repro.errors import MalRuntimeError

if TYPE_CHECKING:  # pragma: no cover — avoids a repro.server import cycle
    from repro.server.lifecycle import QueryContext
from repro.mal.ast import Const, MalInstruction, MalProgram, Var
from repro.mal.modules import lookup
from repro.metrics.families import (
    MAL_EXECUTIONS,
    MAL_INSTRUCTIONS,
    MAL_INSTRUCTION_USEC,
    MAL_WORKER_UTILIZATION,
)
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


@dataclass
class InstructionRun:
    """One executed instruction, as the profiler sees it.

    ``start_usec``/``end_usec`` are microsecond timestamps on the query's
    clock; ``usec`` their difference; ``rss_bytes`` the interpreter's
    simulated resident set after the instruction; ``thread`` the worker
    that ran it (always 0 for the sequential interpreter); ``rows`` the
    output cardinality when the result is a BAT; ``rows_in`` the input
    cardinality (first BAT argument), which together with ``rows`` gives
    the stats store an observed selectivity per selection.
    """

    pc: int
    stmt: str
    module: str
    function: str
    start_usec: int
    end_usec: int
    usec: int
    thread: int
    rss_bytes: int
    rows: int
    rows_in: int = 0


#: Listener protocol: called with ("start"|"done", run) around execution.
RunListener = Callable[[str, InstructionRun], None]


class CostModel:
    """Deterministic per-instruction cost, in microseconds.

    Costs are ``base + per_row * rows`` with operator-class coefficients
    (joins cost more per row than scans; sorts get an ``n log n`` term).
    The absolute values are not calibrated against any real machine — the
    Stethoscope cares about *relative* cost structure: which instructions
    dominate, which run long enough to stay RED on screen.
    """

    BASE_USEC = 2.0

    #: (base usec, usec per input row) per operator class.
    _CLASSES = {
        "bind": (5.0, 0.0),
        "scan": (4.0, 0.05),
        "join": (8.0, 0.12),
        "group": (8.0, 0.15),
        "sort": (8.0, 0.0),  # n log n handled separately
        "aggr": (4.0, 0.05),
        "calc": (2.0, 0.04),
        "pack": (4.0, 0.02),
        "admin": (1.0, 0.0),
        "result": (6.0, 0.01),
    }

    _FUNCTION_CLASS = {
        "sql.bind": "bind",
        "sql.tid": "bind",
        "algebra.select": "scan",
        "algebra.thetaselect": "scan",
        "algebra.likeselect": "scan",
        "algebra.leftjoin": "join",
        "algebra.leftfetchjoin": "join",
        "algebra.join": "join",
        "algebra.semijoin": "join",
        "algebra.kdifference": "join",
        "algebra.sortTail": "sort",
        "algebra.sortReverseTail": "sort",
        "group.new": "group",
        "group.derive": "group",
        "mat.pack": "pack",
        "sql.resultSet": "result",
        "sql.rsColumn": "result",
        "sql.exportResult": "result",
    }

    def cost_usec(self, instr: MalInstruction, inputs: Sequence[Any],
                  outputs: Sequence[Any]) -> int:
        """Modelled duration of one instruction execution."""
        qname = instr.qualified_name
        klass = self._FUNCTION_CLASS.get(qname)
        if klass is None:
            if instr.module in ("language", "mtime"):
                klass = "admin"
            elif instr.module in ("calc", "batcalc"):
                klass = "calc"
            elif instr.module == "aggr":
                klass = "aggr"
            elif instr.module == "bat":
                klass = "calc"
            else:
                klass = "admin"
        base, per_row = self._CLASSES[klass]
        rows_in = sum(len(v) for v in inputs if isinstance(v, BAT))
        cost = base + per_row * rows_in
        if klass == "sort" and rows_in > 1:
            cost += 0.08 * rows_in * math.log2(rows_in)
        return max(1, int(round(cost)))


class EvalContext:
    """Mutable interpreter state shared with instruction implementations."""

    def __init__(self, catalog: Catalog, program: Optional[MalProgram] = None) -> None:
        self.catalog = catalog
        self.program = program
        self.env: Dict[str, Any] = {}
        self.result_sets: List[Any] = []
        self.affected_rows = 0

    def value_of(self, arg) -> Any:
        """Evaluate one instruction argument against the environment."""
        if isinstance(arg, Var):
            try:
                return self.env[arg.name]
            except KeyError:
                raise MalRuntimeError(f"undefined variable {arg.name}") from None
        if isinstance(arg, Const):
            return arg.value
        raise MalRuntimeError(f"bad argument {arg!r}")

    def rss_bytes(self) -> int:
        """Simulated resident set: bytes of all live BATs in the env."""
        return sum(v.bytes() for v in self.env.values() if isinstance(v, BAT))


@dataclass
class ExecutionResult:
    """Outcome of running a MAL program."""

    result_sets: List[Any]
    runs: List[InstructionRun]
    total_usec: int
    affected_rows: int = 0

    @property
    def first(self):
        """The first (usually only) result set, or None."""
        return self.result_sets[0] if self.result_sets else None

    def rows(self) -> List[Tuple[Any, ...]]:
        """Rows of the first result set ([] when none)."""
        return self.first.rows() if self.first else []


def record_execution(scheduler: str, runs: Sequence[InstructionRun],
                     workers: int, total_usec: int) -> None:
    """Feed one finished program run into the engine metrics.

    Called by every execution engine (interpreter and both dataflow
    schedulers) after the run completes, so the per-instruction hot loop
    stays free of metric updates.  Records instruction counts and
    modelled durations per MAL module, plus the run's worker
    utilisation — busy time over ``workers x makespan`` — whose low end
    flags poorly parallelised plans.
    """
    MAL_EXECUTIONS.labels(scheduler=scheduler).inc()
    instructions = MAL_INSTRUCTIONS
    durations = MAL_INSTRUCTION_USEC
    per_module: Dict[str, List[int]] = {}
    for run in runs:
        per_module.setdefault(run.module, []).append(run.usec)
    busy = 0
    for module, usecs in per_module.items():
        instructions.labels(module).inc(len(usecs))
        durations.labels(module).observe_many(usecs)
        busy += sum(usecs)
    if runs and workers > 0 and total_usec > 0:
        utilization = 100.0 * busy / (workers * total_usec)
        MAL_WORKER_UTILIZATION.observe(min(100.0, utilization))


def resolve_impl(instr: MalInstruction):
    """Registry implementation of ``instr``, memoized on the instruction.

    The registry lookup (an f-string build plus dict probe) used to run
    on every ``execute_instruction`` call; compiled programs are
    immutable after optimization, so the first resolution is cached on
    the instruction and reused by every scheduler — and by every later
    run of the same program when the plan cache serves it again.
    Unknown instructions are not cached, so they raise consistently.
    """
    impl = instr.impl_cache
    if impl is None:
        impl = lookup(instr.module, instr.function)
        instr.impl_cache = impl
    return impl


def execute_instruction(ctx: EvalContext, instr: MalInstruction) -> Tuple[list, list]:
    """Evaluate one instruction in ``ctx``; returns (inputs, outputs).

    Results are bound into the environment.  Multi-result instructions
    must return exactly as many values as they declare.
    """
    impl = resolve_impl(instr)
    inputs = [ctx.value_of(arg) for arg in instr.args]
    try:
        out = impl(ctx, instr, inputs)
    except MalRuntimeError:
        raise
    except Exception as exc:
        raise MalRuntimeError(
            f"pc={instr.pc} {instr.qualified_name}: {exc}"
        ) from exc
    if len(instr.results) <= 1:
        outputs = [out] if instr.results else []
    else:
        if not isinstance(out, tuple) or len(out) != len(instr.results):
            raise MalRuntimeError(
                f"pc={instr.pc} {instr.qualified_name}: expected "
                f"{len(instr.results)} results"
            )
        outputs = list(out)
    for name, value in zip(instr.results, outputs):
        ctx.env[name] = value
    return inputs, outputs


def bind_precomputed(ctx: EvalContext, instr: MalInstruction,
                     outputs: Sequence[Any]) -> Tuple[list, list]:
    """Bind a partition worker's precomputed outputs for ``instr``.

    Drop-in replacement for :func:`execute_instruction` when the
    instruction already ran in a worker process (see
    :mod:`repro.mal.mpool`): inputs are still resolved from the
    environment and results still bound into it, so cost modelling,
    rows and RSS accounting see exactly what an in-process execution
    would have produced — only the kernel invocation is skipped.
    """
    inputs = [ctx.value_of(arg) for arg in instr.args]
    for name, value in zip(instr.results, outputs):
        ctx.env[name] = value
    return inputs, list(outputs)


def precompute_fragments(pool, program: MalProgram, catalog: Catalog,
                         context: Optional["QueryContext"] = None,
                         ) -> Dict[int, List[Any]]:
    """Shared engine entry point into the partition worker pool.

    Returns ``{}`` (run everything in-process) when ``pool`` is None or
    the plan has no dataflow barrier; otherwise defers to
    :meth:`~repro.mal.mpool.PartitionWorkerPool.precompute`, which
    applies its own fallbacks (fragment count, row threshold, purity).
    """
    if pool is None or not program.dataflow_enabled:
        return {}
    return pool.precompute(program, catalog, context)


class Interpreter:
    """Reference (sequential) MAL interpreter.

    Args:
        catalog: catalog to resolve ``sql.bind``/``sql.tid`` against.
        cost_model: duration model; defaults to :class:`CostModel`.
        listener: optional profiler callback, invoked with
            ``("start", run)`` before and ``("done", run)`` after every
            instruction.
        realtime_scale: when > 0, additionally sleep
            ``cost_usec * realtime_scale`` microseconds per instruction.
        pool: optional :class:`~repro.mal.mpool.PartitionWorkerPool`;
            when given, partition fragments of mitosis-split plans are
            precomputed in worker processes and their results bound in
            place of in-process kernel execution.
    """

    def __init__(self, catalog: Catalog,
                 cost_model: Optional[CostModel] = None,
                 listener: Optional[RunListener] = None,
                 realtime_scale: float = 0.0,
                 pool=None) -> None:
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.listener = listener
        self.realtime_scale = realtime_scale
        self.pool = pool

    def run(self, program: MalProgram,
            context: Optional["QueryContext"] = None) -> ExecutionResult:
        """Execute ``program`` start to finish; returns its results and
        the per-instruction run records.

        ``context`` is an optional
        :class:`~repro.server.lifecycle.QueryContext`; when given, it is
        checked before every instruction so cancellation, deadlines and
        RSS budgets take effect at instruction boundaries.
        """
        program.validate()
        ctx = EvalContext(self.catalog, program)
        precomputed = precompute_fragments(
            self.pool, program, self.catalog, context)
        clock = 0
        runs: List[InstructionRun] = []
        from repro.mal.printer import format_instruction

        for instr in program.instructions:
            if context is not None:
                context.check(ctx.rss_bytes())
            stmt = format_instruction(instr, program)
            start_run = InstructionRun(
                pc=instr.pc, stmt=stmt, module=instr.module,
                function=instr.function, start_usec=clock, end_usec=clock,
                usec=0, thread=0, rss_bytes=ctx.rss_bytes(), rows=0,
            )
            if self.listener is not None:
                self.listener("start", start_run)
            if instr.pc in precomputed:
                inputs, outputs = bind_precomputed(
                    ctx, instr, precomputed[instr.pc])
            else:
                inputs, outputs = execute_instruction(ctx, instr)
            cost = self.cost_model.cost_usec(instr, inputs, outputs)
            if self.realtime_scale > 0:
                time.sleep(cost * self.realtime_scale / 1_000_000.0)
            clock += cost
            rows = 0
            for value in outputs:
                if isinstance(value, BAT):
                    rows = len(value)
                    break
            rows_in = 0
            for value in inputs:
                if isinstance(value, BAT):
                    rows_in = len(value)
                    break
            done_run = InstructionRun(
                pc=instr.pc, stmt=stmt, module=instr.module,
                function=instr.function, start_usec=start_run.start_usec,
                end_usec=clock, usec=cost, thread=0,
                rss_bytes=ctx.rss_bytes(), rows=rows, rows_in=rows_in,
            )
            runs.append(done_run)
            if self.listener is not None:
                self.listener("done", done_run)
        record_execution("interpreter", runs, 1, clock)
        return ExecutionResult(
            result_sets=ctx.result_sets, runs=runs, total_usec=clock,
            affected_rows=ctx.affected_rows,
        )
