"""A GDB-like MAL debugger (``mdb``).

Paper §2: "MonetDB provides a GDB-like MAL debugger for runtime
inspection.  However, further improvements could be gained by having a
visual assistance tool" — Stethoscope is that tool, but the textual
debugger is part of the substrate it improves on, so it is reproduced
here: breakpoints (by pc or by ``module.function``), single-stepping,
continue-to-break, variable inspection with BAT previews, and source
listing around the current instruction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Union

from repro.errors import MalRuntimeError
from repro.mal.ast import MalProgram
from repro.mal.interpreter import EvalContext, execute_instruction
from repro.mal.printer import format_instruction
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


class Breakpoint:
    """A break condition: a pc, or every call of ``module.function``."""

    def __init__(self, spec: Union[int, str]) -> None:
        self.spec = spec

    def hits(self, instr) -> bool:
        if isinstance(self.spec, int):
            return instr.pc == self.spec
        return instr.qualified_name == self.spec

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Breakpoint({self.spec})"


class MalDebugger:
    """Interactive execution of one MAL program.

    Typical session::

        mdb = MalDebugger(catalog, program)
        mdb.break_at("algebra.leftjoin")
        mdb.cont()                 # run to the breakpoint
        print(mdb.list_source())   # where am I?
        print(mdb.inspect("X_10")) # look at a BAT
        mdb.step()                 # execute the join
        mdb.cont()                 # run to completion
    """

    def __init__(self, catalog: Catalog, program: MalProgram) -> None:
        program.validate()
        self.program = program
        self.ctx = EvalContext(catalog, program)
        self.pc = 0
        self.breakpoints: List[Breakpoint] = []
        self.finished = False

    # ------------------------------------------------------------------
    # breakpoints
    # ------------------------------------------------------------------

    def break_at(self, spec: Union[int, str]) -> Breakpoint:
        """Set a breakpoint at a pc or on a ``module.function``."""
        if isinstance(spec, int) and not (
            0 <= spec < len(self.program.instructions)
        ):
            raise MalRuntimeError(f"breakpoint pc {spec} outside the plan")
        breakpoint_ = Breakpoint(spec)
        self.breakpoints.append(breakpoint_)
        return breakpoint_

    def clear_breakpoints(self) -> None:
        self.breakpoints = []

    def _breaks_on(self, instr) -> bool:
        return any(b.hits(instr) for b in self.breakpoints)

    # ------------------------------------------------------------------
    # execution control
    # ------------------------------------------------------------------

    @property
    def current_instruction(self):
        """The instruction about to execute (None when finished)."""
        if self.pc >= len(self.program.instructions):
            return None
        return self.program.instructions[self.pc]

    def step(self) -> Optional[str]:
        """Execute exactly one instruction; returns its text."""
        instr = self.current_instruction
        if instr is None:
            self.finished = True
            return None
        execute_instruction(self.ctx, instr)
        self.pc += 1
        if self.pc >= len(self.program.instructions):
            self.finished = True
        return format_instruction(instr, self.program)

    def next(self, count: int = 1) -> int:
        """Execute up to ``count`` instructions; returns how many ran."""
        ran = 0
        for _ in range(count):
            if self.step() is None:
                break
            ran += 1
        return ran

    def cont(self) -> Optional[int]:
        """Run until the next breakpoint (returns its pc) or the end
        (returns None).  The instruction at the breakpoint has *not*
        executed yet, like gdb."""
        first = True
        while True:
            instr = self.current_instruction
            if instr is None:
                self.finished = True
                return None
            # a breakpoint on the instruction we are already standing on
            # does not re-trigger: cont() first steps off it, like gdb
            if not first and self._breaks_on(instr):
                return instr.pc
            first = False
            execute_instruction(self.ctx, instr)
            self.pc += 1

    def run_to_end(self) -> None:
        """Ignore breakpoints and finish the program."""
        while self.step() is not None:
            pass

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def inspect(self, var_name: str, max_rows: int = 10) -> str:
        """Describe a variable: scalars verbatim, BATs as a preview table."""
        if var_name not in self.ctx.env:
            return f"{var_name}: <undefined>"
        value = self.ctx.env[var_name]
        if isinstance(value, BAT):
            lines = [
                f"{var_name}: BAT[{'void' if value.is_void_head else 'oid'},"
                f"{value.tail_type.name}] count={value.count()} "
                f"bytes={value.bytes()}"
            ]
            for position, (head, tail) in enumerate(value.items()):
                if position >= max_rows:
                    lines.append(f"  ... {value.count() - max_rows} more")
                    break
                lines.append(f"  [{head}] {tail!r}")
            return "\n".join(lines)
        return f"{var_name}: {value!r}"

    def variables(self) -> Dict[str, str]:
        """One-line descriptions of all live variables."""
        out = {}
        for name, value in self.ctx.env.items():
            if isinstance(value, BAT):
                out[name] = f"BAT#{value.count()}:{value.tail_type.name}"
            else:
                out[name] = type(value).__name__
        return out

    def list_source(self, context: int = 3) -> str:
        """Plan text around the current pc, gdb ``list`` style: the next
        instruction is marked with ``=>``."""
        lines = []
        low = max(0, self.pc - context)
        high = min(len(self.program.instructions), self.pc + context + 1)
        for index in range(low, high):
            marker = "=>" if index == self.pc else "  "
            text = format_instruction(
                self.program.instructions[index], self.program
            )
            lines.append(f"{marker} [{index:>4}] {text}")
        return "\n".join(lines)

    def where(self) -> str:
        """One-line position report."""
        instr = self.current_instruction
        if instr is None:
            return "at end of plan"
        return f"pc={self.pc}: {format_instruction(instr, self.program)}"
