"""Parser for the MAL text format produced by :mod:`repro.mal.printer`.

The accepted grammar covers what query plans contain::

    program  := header instr* trailer
    header   := "function" qname props? "(" ")" (":" "void")? ";"
    instr    := (lhs ":=")? call ";"
    lhs      := target | "(" target ("," target)* ")"
    target   := NAME typespec?
    call     := NAME "." NAME "(" (arg ("," arg)*)? ")"
    arg      := NAME | literal (":" typename)?
    typespec := ":" typename | ":bat[:" typename ",:" typename "]"

Comments start with ``#`` and run to end of line.  The parser is strict:
malformed input raises :class:`~repro.errors.MalParseError` with a line
number, which is what the offline Stethoscope relies on to reject
corrupted plan files early.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.errors import MalParseError
from repro.mal.ast import ANY, Const, MalProgram, TypeSpec, Var, bat_of, scalar_of
from repro.storage.types import parse_value, type_by_name

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+)
  | (?P<assign>:=)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[().,;:\[\]{}=])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r},l{self.line})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise MalParseError(f"line {line}: unexpected character {text[pos]!r}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "ws":
            line += value.count("\n")
        elif kind != "comment":
            tokens.append(_Token(kind, value, line))
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise MalParseError(
                f"line {token.line}: expected {wanted!r}, got {token.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar -------------------------------------------------------

    def parse_program(self) -> MalProgram:
        self.expect("name", "function")
        qname = self.expect("name").text
        while self.accept("punct", "."):
            qname += "." + self.expect("name").text
        properties = self._parse_properties()
        self.expect("punct", "(")
        self.expect("punct", ")")
        if self.accept("punct", ":"):
            self.expect("name")  # return type, normally void
        self.expect("punct", ";")
        program = MalProgram(qname, properties)
        while not (self.peek().kind == "name" and self.peek().text == "end"):
            if self.peek().kind == "eof":
                raise MalParseError(
                    f"line {self.peek().line}: missing 'end' of function"
                )
            self._parse_instruction(program)
        self.expect("name", "end")
        self.expect("name")
        self.accept("punct", ";")
        if self.peek().kind != "eof":
            token = self.peek()
            raise MalParseError(
                f"line {token.line}: trailing input after 'end': {token.text!r}"
            )
        program.renumber()
        return program

    def _parse_properties(self) -> dict:
        properties: dict = {}
        if not self.accept("punct", "{"):
            return properties
        while True:
            key = self.expect("name").text
            self.expect("punct", "=")
            token = self.advance()
            properties[key] = parse_value(token.text)
            if not self.accept("punct", ","):
                break
        self.expect("punct", "}")
        return properties

    def _parse_instruction(self, program: MalProgram) -> None:
        results: List[Tuple[str, TypeSpec]] = []
        if self.peek().kind == "punct" and self.peek().text == "(":
            self.advance()
            while True:
                results.append(self._parse_target())
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
            self.expect("assign")
        elif self._looks_like_assignment():
            results.append(self._parse_target())
            self.expect("assign")
        module = self.expect("name").text
        self.expect("punct", ".")
        function = self.expect("name").text
        self.expect("punct", "(")
        args: List[Any] = []
        if not (self.peek().kind == "punct" and self.peek().text == ")"):
            while True:
                args.append(self._parse_argument())
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        self.expect("punct", ";")
        for name, spec in results:
            if name not in program.var_types or program.var_types[name] is ANY:
                program.var_types[name] = spec
        program.add(module, function, args, [name for name, _ in results])

    def _looks_like_assignment(self) -> bool:
        """Disambiguate ``X_1 := ...`` / ``X_1:typ := ...`` from a bare call
        ``sql.exportResult(...)`` by scanning ahead for ``:=`` before the
        opening parenthesis of a call."""
        offset = 0
        depth = 0
        while True:
            token = self.peek(offset)
            if token.kind == "eof" or token.text == ";":
                return False
            if token.kind == "assign" and depth == 0:
                return True
            if token.text == "(" and depth == 0:
                return False
            if token.text == "[":
                depth += 1
            elif token.text == "]":
                depth -= 1
            offset += 1

    def _parse_target(self) -> Tuple[str, TypeSpec]:
        name = self.expect("name").text
        spec = ANY
        if self.peek().kind == "punct" and self.peek().text == ":":
            spec = self._parse_typespec()
        return name, spec

    def _parse_typespec(self) -> TypeSpec:
        self.expect("punct", ":")
        type_name = self.expect("name").text
        if type_name != "bat":
            return scalar_of(type_name)
        self.expect("punct", "[")
        self.expect("punct", ":")
        head = self.expect("name").text
        self.expect("punct", ",")
        self.expect("punct", ":")
        tail = self.expect("name").text
        self.expect("punct", "]")
        return bat_of(tail, head)

    def _parse_argument(self):
        token = self.peek()
        if token.kind == "name" and token.text in ("nil", "true", "false"):
            self.advance()
            value = {"nil": None, "true": True, "false": False}[token.text]
            mal_type = self._maybe_const_type()
            return Const(value, mal_type)
        if token.kind == "name":
            self.advance()
            return Var(token.text)
        if token.kind == "string":
            self.advance()
            return Const(parse_value(token.text), type_by_name("str"))
        if token.kind == "number":
            self.advance()
            value = parse_value(token.text)
            mal_type = self._maybe_const_type()
            if mal_type is not None:
                from repro.storage.types import cast_value

                value = cast_value(value, mal_type)
            return Const(value, mal_type)
        raise MalParseError(
            f"line {token.line}: expected argument, got {token.text!r}"
        )

    def _maybe_const_type(self):
        if self.peek().kind == "punct" and self.peek().text == ":":
            spec = self._parse_typespec()
            return spec.tail
        return None


def parse_program(text: str) -> MalProgram:
    """Parse MAL text into a :class:`MalProgram`.

    Raises:
        MalParseError: on any syntax error, with a line number.
    """
    return _Parser(text).parse_program()


def parse_instruction_text(text: str) -> MalProgram:
    """Parse a loose sequence of instructions (no function wrapper) into a
    throwaway program — handy in tests and trace tooling."""
    wrapped = "function user.fragment():void;\n" + text + "\nend fragment;"
    return parse_program(wrapped)
