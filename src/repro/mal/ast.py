"""MAL abstract syntax: variables, type specs, instructions, programs.

A MAL plan is a ``function ... end`` block containing a straight-line
sequence of instructions.  Each instruction assigns the results of a
``module.function(args)`` call to zero or more variables::

    X_10:bat[:oid,:int] := sql.bind(X_2,"sys","lineitem","l_partkey",0);

Variables are write-once (SSA-like), which is what makes the plan a
dataflow DAG: an edge runs from the instruction defining a variable to
every instruction using it.  The Stethoscope exploits exactly this
property — the plan's dot file is that DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import MalError
from repro.storage.types import MalType, OID, format_value, type_by_name


@dataclass(frozen=True)
class TypeSpec:
    """A MAL type annotation: a scalar atom or a ``bat[:head,:tail]``."""

    kind: str  # "scalar" | "bat" | "any"
    head: Optional[MalType] = None
    tail: Optional[MalType] = None

    def __str__(self) -> str:
        if self.kind == "scalar":
            return f":{self.tail.name}"  # type: ignore[union-attr]
        if self.kind == "bat":
            head = self.head.name if self.head else "oid"
            tail = self.tail.name if self.tail else "any"
            return f":bat[:{head},:{tail}]"
        return ":any"

    @property
    def is_bat(self) -> bool:
        return self.kind == "bat"


ANY = TypeSpec("any")


def scalar_of(name_or_type: Union[str, MalType]) -> TypeSpec:
    """TypeSpec for a scalar atom, by name or MalType."""
    mal_type = (
        type_by_name(name_or_type) if isinstance(name_or_type, str) else name_or_type
    )
    return TypeSpec("scalar", tail=mal_type)


def bat_of(tail: Union[str, MalType], head: Union[str, MalType] = OID) -> TypeSpec:
    """TypeSpec for a BAT with the given tail (and oid head by default)."""
    tail_type = type_by_name(tail) if isinstance(tail, str) else tail
    head_type = type_by_name(head) if isinstance(head, str) else head
    return TypeSpec("bat", head=head_type, tail=tail_type)


@dataclass(frozen=True)
class Var:
    """A reference to a MAL variable by name (e.g. ``X_10``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal argument with an optional explicit type annotation."""

    value: Any
    mal_type: Optional[MalType] = None

    def __str__(self) -> str:
        text = format_value(self.value)
        if self.mal_type is not None and self.value is not None and not isinstance(
            self.value, str
        ):
            return f"{text}:{self.mal_type.name}"
        return text


Argument = Union[Var, Const]


@dataclass
class MalInstruction:
    """One MAL statement.

    Attributes:
        results: names of the variables assigned (may be empty for pure
            side-effect calls such as ``sql.exportResult``).
        module: MAL module name (``algebra``, ``bat``, ...).
        function: function name inside the module (``leftjoin``, ...).
        args: positional arguments, each a :class:`Var` or :class:`Const`.
        pc: program counter — the index of this instruction inside its
            program, the key that maps trace events to dot-file nodes.
    """

    results: List[str]
    module: str
    function: str
    args: List[Argument]
    pc: int = -1
    #: memoized module-registry implementation, resolved lazily by the
    #: first execution (interpreter or scheduler) and reused for every
    #: later run of the same compiled program (e.g. plan-cache hits).
    #: Excluded from repr/equality: it is derived state, not identity.
    impl_cache: Optional[Callable] = field(default=None, repr=False,
                                           compare=False)

    @property
    def qualified_name(self) -> str:
        """``module.function`` as printed in plans and traces."""
        return f"{self.module}.{self.function}"

    def uses(self) -> Iterator[str]:
        """Names of variables this instruction reads."""
        for arg in self.args:
            if isinstance(arg, Var):
                yield arg.name

    def defines(self) -> Iterator[str]:
        """Names of variables this instruction writes."""
        return iter(self.results)

    def __str__(self) -> str:
        from repro.mal.printer import format_instruction

        return format_instruction(self)


class MalProgram:
    """A MAL function body: an ordered list of instructions plus types.

    Instructions are appended via :meth:`add`; variable names are unique
    (write-once) and fresh names can be drawn from :meth:`new_var`.
    """

    def __init__(self, name: str = "user.main",
                 properties: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.properties: Dict[str, Any] = dict(properties or {})
        self.instructions: List[MalInstruction] = []
        self.var_types: Dict[str, TypeSpec] = {}
        self._counter = 0
        #: set by the dataflow optimizer pass; the interpreter consults it.
        self.dataflow_enabled = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def new_var(self, type_spec: TypeSpec = ANY) -> str:
        """Allocate a fresh variable name (``X_<n>``) with a type."""
        while True:
            name = f"X_{self._counter}"
            self._counter += 1
            if name not in self.var_types:
                self.var_types[name] = type_spec
                return name

    def declare(self, name: str, type_spec: TypeSpec = ANY) -> str:
        """Register an externally chosen variable name."""
        if name in self.var_types:
            raise MalError(f"variable {name} already declared")
        self.var_types[name] = type_spec
        return name

    def add(self, module: str, function: str, args: Sequence[Argument] = (),
            results: Sequence[str] = ()) -> MalInstruction:
        """Append an instruction; result variables must be declared or are
        auto-declared with unknown type."""
        for res in results:
            if res not in self.var_types:
                self.var_types[res] = ANY
        instr = MalInstruction(list(results), module, function, list(args),
                               pc=len(self.instructions))
        self.instructions.append(instr)
        return instr

    def call(self, module: str, function: str, args: Sequence[Argument] = (),
             result_type: TypeSpec = ANY) -> Var:
        """Append a single-result instruction and return a Var for it."""
        result = self.new_var(result_type)
        self.add(module, function, args, [result])
        return Var(result)

    def renumber(self) -> None:
        """Re-assign pcs after structural edits (optimizer passes)."""
        for pc, instr in enumerate(self.instructions):
            instr.pc = pc

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[MalInstruction]:
        return iter(self.instructions)

    def type_of(self, var_name: str) -> TypeSpec:
        """Declared type of a variable (``ANY`` when unknown)."""
        return self.var_types.get(var_name, ANY)

    def defining_instruction(self, var_name: str) -> Optional[MalInstruction]:
        """The instruction that defines ``var_name``, if any."""
        for instr in self.instructions:
            if var_name in instr.results:
                return instr
        return None

    def def_sites(self) -> Dict[str, int]:
        """Map variable name -> pc of its defining instruction."""
        sites: Dict[str, int] = {}
        for instr in self.instructions:
            for res in instr.results:
                if res not in sites:
                    sites[res] = instr.pc
        return sites

    def dependencies(self) -> Dict[int, Set[int]]:
        """Dataflow dependencies: pc -> set of pcs it depends on.

        An instruction depends on the defining instruction of each of its
        argument variables.  Because variables are write-once the relation
        is acyclic, so the result is the DAG drawn in the dot file.
        """
        sites = self.def_sites()
        deps: Dict[int, Set[int]] = {}
        for instr in self.instructions:
            wanted: Set[int] = set()
            for used in instr.uses():
                site = sites.get(used)
                if site is not None and site != instr.pc:
                    wanted.add(site)
            deps[instr.pc] = wanted
        return deps

    def users(self) -> Dict[str, List[int]]:
        """Map variable name -> pcs of instructions that read it."""
        out: Dict[str, List[int]] = {}
        for instr in self.instructions:
            for used in instr.uses():
                out.setdefault(used, []).append(instr.pc)
        return out

    def validate(self) -> None:
        """Check SSA discipline and use-before-def; raises MalError."""
        defined: Set[str] = set()
        for instr in self.instructions:
            for used in instr.uses():
                if used not in defined:
                    raise MalError(
                        f"pc={instr.pc}: variable {used} used before definition"
                    )
            for res in instr.results:
                if res in defined:
                    raise MalError(
                        f"pc={instr.pc}: variable {res} assigned twice"
                    )
                defined.add(res)

    def __str__(self) -> str:
        from repro.mal.printer import format_program

        return format_program(self)
