"""The dataflow admission pass.

MonetDB wraps the side-effect-free region of a plan in a
``language.dataflow`` barrier, allowing the interpreter to run it with a
worker pool.  Here the pass inserts the marker instruction at the top of
the plan (for plan-shape fidelity — it shows up as a node in the dot file,
like the administrative instructions the paper's pruning feature targets)
and sets :attr:`MalProgram.dataflow_enabled`, which both schedulers
consult.  Skipping this pass is precisely how a plan ends up running
sequentially on a multi-core box — the anomaly the paper reports finding
with Stethoscope.
"""

from __future__ import annotations

from repro.mal.ast import MalProgram
from repro.mal.optimizer.base import rebuild_program


class Dataflow:
    """Admit parallel interpretation of the plan."""

    name = "dataflow"

    def run(self, program: MalProgram) -> MalProgram:
        out = rebuild_program(program, program.instructions)
        if not any(
            i.qualified_name == "language.dataflow" for i in out.instructions
        ):
            marker = out.add("language", "dataflow")
            out.instructions.remove(marker)
            out.instructions.insert(0, marker)
            out.renumber()
        out.dataflow_enabled = True
        return out
