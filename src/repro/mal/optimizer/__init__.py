"""The MAL optimizer pipeline.

MonetDB rewrites a freshly generated MAL plan through a configurable
sequence of optimizer passes before interpretation; the Stethoscope exists
partly to let you *see* what those passes did (the paper: "how optimizers
perform").  The passes provided here mirror the well-known MonetDB ones:

* :class:`ConstantFold`   — evaluate scalar ``calc`` ops over literals;
* :class:`CommonSubexpression` — deduplicate pure instructions;
* :class:`DeadCode`       — drop instructions whose results are unused;
* :class:`AdaptiveOrder`  — reorder commutable select chains
  most-selective-first using observed runtime statistics (inert until a
  stats store is injected);
* :class:`Mitosis`        — partition the largest table horizontally and
  replicate the dependent plan fragment per partition (with ``mat.pack``
  glue), the main source of intra-query parallelism;
* :class:`GarbageCollector` — insert ``language.pass`` release
  statements after each BAT's last use (plan-shape fidelity; these are
  the administrative instructions the pruning feature removes);
* :class:`Dataflow`       — admit multi-worker interpretation.

Predefined pipelines match MonetDB's vocabulary: ``minimal_pipe``,
``sequential_pipe`` (no parallelism — the configuration under which the
paper's authors observed their "sequential plan" anomaly) and
``default_pipe``; ``static_pipe`` is ``default_pipe`` without the
adaptive reordering, pinning today's feedback-free plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import OptimizerError
from repro.mal.ast import MalProgram
from repro.mal.optimizer.adaptive_order import AdaptiveOrder
from repro.mal.optimizer.constant_fold import ConstantFold
from repro.mal.optimizer.cse import CommonSubexpression
from repro.mal.optimizer.deadcode import DeadCode
from repro.mal.optimizer.dataflowpass import Dataflow
from repro.mal.optimizer.garbage import GarbageCollector
from repro.mal.optimizer.mitosis import Mitosis


@dataclass
class PassReport:
    """What one optimizer pass did to the plan."""

    name: str
    instructions_before: int
    instructions_after: int

    @property
    def delta(self) -> int:
        return self.instructions_after - self.instructions_before


class Pipeline:
    """An ordered sequence of optimizer passes.

    Calling :meth:`apply` runs every pass and returns the rewritten
    program; :attr:`reports` records per-pass instruction counts, which
    the ablation benchmarks use.
    """

    def __init__(self, name: str, passes: Sequence) -> None:
        self.name = name
        self.passes = list(passes)
        self.reports: List[PassReport] = []

    def apply(self, program: MalProgram) -> MalProgram:
        """Run all passes in order over ``program``."""
        self.reports = []
        current = program
        for opt_pass in self.passes:
            before = len(current)
            current = opt_pass.run(current)
            current.renumber()
            self.reports.append(
                PassReport(opt_pass.name, before, len(current))
            )
        current.validate()
        return current


def minimal_pipe() -> Pipeline:
    """Constant folding and dead-code removal only."""
    return Pipeline("minimal_pipe", [ConstantFold(), DeadCode()])


def sequential_pipe() -> Pipeline:
    """Full scalar optimization but *no* parallelism: the plan stays
    sequential.  Analysing a query run under this pipe is how Stethoscope
    surfaces the paper's "sequential execution where multithreaded
    execution was expected" anomaly."""
    return Pipeline(
        "sequential_pipe",
        [ConstantFold(), CommonSubexpression(), DeadCode(),
         GarbageCollector()],
    )


def default_pipe(nparts: int = 4, mitosis_threshold: int = 1000) -> Pipeline:
    """The standard pipeline: scalar passes, adaptive reordering (inert
    until a stats store is injected), mitosis and dataflow."""
    return Pipeline(
        "default_pipe",
        [
            ConstantFold(),
            CommonSubexpression(),
            DeadCode(),
            AdaptiveOrder(),
            Mitosis(nparts=nparts, threshold_rows=mitosis_threshold),
            GarbageCollector(),
            Dataflow(),
        ],
    )


def static_pipe(nparts: int = 4, mitosis_threshold: int = 1000) -> Pipeline:
    """``default_pipe`` minus adaptive reordering: plans keep their
    syntactic selection order no matter what the stats store has seen.
    Selecting this pipeline restores the pre-feedback plans exactly."""
    return Pipeline(
        "static_pipe",
        [
            ConstantFold(),
            CommonSubexpression(),
            DeadCode(),
            Mitosis(nparts=nparts, threshold_rows=mitosis_threshold),
            GarbageCollector(),
            Dataflow(),
        ],
    )


_PIPES: Dict[str, Callable[[], Pipeline]] = {
    "minimal_pipe": minimal_pipe,
    "sequential_pipe": sequential_pipe,
    "default_pipe": default_pipe,
    "static_pipe": static_pipe,
}


def pipeline_by_name(name: str, **kwargs) -> Pipeline:
    """Instantiate a predefined pipeline by MonetDB-style name."""
    try:
        factory = _PIPES[name]
    except KeyError:
        raise OptimizerError(f"unknown optimizer pipeline {name!r}") from None
    return factory(**kwargs) if kwargs else factory()


__all__ = [
    "AdaptiveOrder",
    "CommonSubexpression",
    "ConstantFold",
    "Dataflow",
    "DeadCode",
    "GarbageCollector",
    "Mitosis",
    "PassReport",
    "Pipeline",
    "default_pipe",
    "minimal_pipe",
    "pipeline_by_name",
    "sequential_pipe",
    "static_pipe",
]
