"""Dead-code elimination: drop instructions whose results nothing uses.

A backward liveness sweep keeps side-effecting instructions and anything
(transitively) feeding them; everything else disappears.  This is the pass
that shrinks plans most visibly in the Stethoscope's graph view.
"""

from __future__ import annotations

from typing import List, Set

from repro.mal.ast import MalProgram
from repro.mal.optimizer.base import has_side_effects, rebuild_program


class DeadCode:
    """Remove instructions with unused results and no side effects."""

    name = "deadcode"

    def run(self, program: MalProgram) -> MalProgram:
        live_vars: Set[str] = set()
        keep: List[bool] = [False] * len(program.instructions)
        for index in range(len(program.instructions) - 1, -1, -1):
            instr = program.instructions[index]
            needed = has_side_effects(instr) or any(
                res in live_vars for res in instr.results
            )
            if needed:
                keep[index] = True
                live_vars.update(instr.uses())
        kept = [
            instr for flag, instr in zip(keep, program.instructions) if flag
        ]
        return rebuild_program(program, kept)
