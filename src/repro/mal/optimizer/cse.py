"""Common-subexpression elimination for pure MAL instructions.

Two instructions compute the same value when they call the same function
over the same arguments and neither has side effects nor allocates fresh
mutable state.  The second occurrence is removed and its result variables
aliased to the first's.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mal.ast import Argument, Const, MalProgram, Var
from repro.mal.optimizer.base import (
    ALLOCATORS,
    has_side_effects,
    rebuild_program,
    substitute_args,
)


def _signature(instr) -> Tuple:
    parts: List = [instr.qualified_name]
    for arg in instr.args:
        if isinstance(arg, Var):
            parts.append(("v", arg.name))
        else:
            parts.append(("c", repr(arg.value)))
    return tuple(parts)


class CommonSubexpression:
    """Deduplicate identical pure instructions."""

    name = "cse"

    def run(self, program: MalProgram) -> MalProgram:
        seen: Dict[Tuple, List[str]] = {}
        replacements: Dict[str, Argument] = {}
        kept: List = []
        for instr in program.instructions:
            substitute_args(instr, replacements)
            mergeable = (
                not has_side_effects(instr)
                and instr.qualified_name not in ALLOCATORS
                and instr.results
            )
            if not mergeable:
                kept.append(instr)
                continue
            signature = _signature(instr)
            prior = seen.get(signature)
            if prior is None:
                seen[signature] = list(instr.results)
                kept.append(instr)
                continue
            for mine, theirs in zip(instr.results, prior):
                replacements[mine] = Var(theirs)
        return rebuild_program(program, kept)
