"""Mitosis: horizontal partitioning of the plan's dominant table.

MonetDB's mitosis optimizer splits the largest table into fragments and
replicates the dependent plan fragment once per partition; the mergetable
logic then glues partitioned intermediates back together with ``mat.pack``
wherever an operator cannot work partition-wise.  Together with the
dataflow pass this is what turns a single query into multi-core work — and
what makes plans balloon past 1000 nodes (paper Figure 2), since every
partition clones a slice of the plan.

This implementation folds both roles into one pass:

* ``sql.bind`` on the chosen table becomes *nparts* partition binds
  (the 7-argument ``sql.bind(..., part, nparts)`` form);
* *partition-transparent* operators (selections, batcalc, mirror,
  left joins against unpartitioned columns) are replicated per partition;
* scalar aggregates over a partitioned input become per-partition
  aggregates plus a fold chain (``calc.add``/``min``/``max``);
* every other consumer of a partitioned variable receives a ``mat.pack``
  of the partitions (inserted once and cached).

Correctness rests on ``mat.pack`` preserving head oids, so packing the
partition results of a partition-transparent operator reproduces exactly
the unpartitioned result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import OptimizerError
from repro.mal.ast import Const, MalInstruction, MalProgram, Var
from repro.mal.optimizer.base import rebuild_program

_SELECTIONS = {"algebra.select", "algebra.thetaselect", "algebra.likeselect"}
_LEFT_PARTITIONED_JOINS = {
    "algebra.leftjoin", "algebra.leftfetchjoin", "algebra.join",
}
_AGG_FOLD = {"sum": "add", "count": "add", "min": "min", "max": "max"}


class Mitosis:
    """Partition the dominant table over ``nparts`` plan fragments.

    Args:
        nparts: number of horizontal partitions (usually the worker count).
        threshold_rows: with a catalog attached, tables smaller than this
            are left alone (partitioning tiny tables only adds overhead).
        catalog: optional catalog used to pick the largest table by actual
            row count; without one the table referenced by the most
            ``sql.bind`` instructions is chosen.
    """

    name = "mitosis"

    def __init__(self, nparts: int = 4, threshold_rows: int = 1000,
                 catalog=None) -> None:
        if nparts < 1:
            raise OptimizerError("mitosis needs nparts >= 1")
        self.nparts = nparts
        self.threshold_rows = threshold_rows
        self.catalog = catalog

    # ------------------------------------------------------------------

    def run(self, program: MalProgram) -> MalProgram:
        if self.nparts == 1:
            return program
        target = self._choose_target(program)
        if target is None:
            return program
        out = MalProgram(program.name, dict(program.properties))
        out.var_types = dict(program.var_types)
        out.dataflow_enabled = program.dataflow_enabled
        out._counter = program._counter
        partitions: Dict[str, List[str]] = {}
        packed: Dict[str, str] = {}
        for instr in program.instructions:
            if self._is_target_bind(instr, target):
                partitions[instr.results[0]] = self._emit_partition_binds(
                    out, instr
                )
                continue
            part_args = [
                a.name for a in instr.args
                if isinstance(a, Var) and a.name in partitions
            ]
            if not part_args:
                out.instructions.append(instr)
                continue
            if self._partition_transparent(instr, partitions, program):
                self._emit_replicas(out, instr, partitions)
                continue
            if self._foldable_aggregate(instr, partitions):
                self._emit_folded_aggregate(out, instr, partitions)
                continue
            self._emit_with_packs(out, instr, partitions, packed)
        out.renumber()
        return out

    # ------------------------------------------------------------------
    # target choice
    # ------------------------------------------------------------------

    def _choose_target(self, program: MalProgram) -> Optional[Tuple[str, str]]:
        counts: Dict[Tuple[str, str], int] = {}
        for instr in program.instructions:
            key = self._bind_key(instr)
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
        if not counts:
            return None
        if self.catalog is not None:
            best, best_rows = None, -1
            for schema, table in counts:
                try:
                    rows = self.catalog.schema(schema).table(table).row_count()
                except Exception:
                    continue
                if rows > best_rows:
                    best, best_rows = (schema, table), rows
            if best is None or best_rows < self.threshold_rows:
                return None
            return best
        return max(counts, key=lambda k: (counts[k], k))

    @staticmethod
    def _bind_key(instr: MalInstruction) -> Optional[Tuple[str, str]]:
        if instr.qualified_name != "sql.bind" or len(instr.args) != 5:
            return None
        schema_arg, table_arg, access = instr.args[1], instr.args[2], instr.args[4]
        if not all(isinstance(a, Const) for a in (schema_arg, table_arg, access)):
            return None
        if access.value != 0:
            return None
        return str(schema_arg.value), str(table_arg.value)

    def _is_target_bind(self, instr: MalInstruction,
                        target: Tuple[str, str]) -> bool:
        return self._bind_key(instr) == target and len(instr.results) == 1

    # ------------------------------------------------------------------
    # rewriting
    # ------------------------------------------------------------------

    def _emit_partition_binds(self, out: MalProgram,
                              instr: MalInstruction) -> List[str]:
        parts: List[str] = []
        for index in range(self.nparts):
            var = out.new_var(out.type_of(instr.results[0]))
            out.add(
                "sql", "bind",
                list(instr.args) + [Const(index), Const(self.nparts)],
                [var],
            )
            parts.append(var)
        return parts

    def _partition_transparent(self, instr: MalInstruction,
                               partitions: Dict[str, List[str]],
                               program: Optional[MalProgram] = None) -> bool:
        qname = instr.qualified_name
        args = instr.args

        def partitioned(arg) -> bool:
            return isinstance(arg, Var) and arg.name in partitions

        def oid_tailed(arg) -> bool:
            if program is None or not isinstance(arg, Var):
                return False
            spec = program.type_of(arg.name)
            return spec.is_bat and spec.tail is not None \
                and spec.tail.name == "oid"

        if qname in _SELECTIONS:
            return partitioned(args[0]) and not any(
                partitioned(a) for a in args[1:]
            )
        if qname == "bat.mirror":
            return partitioned(args[0])
        if qname in _LEFT_PARTITIONED_JOINS:
            if len(args) != 2 or not partitioned(args[0]):
                return False
            if not partitioned(args[1]):
                return True  # projection against the full column
            # both sides partitioned: only safe when the left side is a
            # candidate list (oid tails) matching the same oid ranges
            return oid_tailed(args[0])
        if qname == "algebra.semijoin":
            # semijoin filters by head membership; heads of both sides
            # live in the same partition's oid range
            return (len(args) == 2 and partitioned(args[0])
                    and partitioned(args[1]))
        if instr.module == "batcalc":
            return all(
                isinstance(a, Const) or partitioned(a) for a in args
            )
        return False

    def _emit_replicas(self, out: MalProgram, instr: MalInstruction,
                       partitions: Dict[str, List[str]]) -> None:
        result_parts: Dict[str, List[str]] = {r: [] for r in instr.results}
        for index in range(self.nparts):
            new_args = []
            for arg in instr.args:
                if isinstance(arg, Var) and arg.name in partitions:
                    new_args.append(Var(partitions[arg.name][index]))
                else:
                    new_args.append(arg)
            new_results = []
            for res in instr.results:
                var = out.new_var(out.type_of(res))
                new_results.append(var)
                result_parts[res].append(var)
            out.add(instr.module, instr.function, new_args, new_results)
        partitions.update(result_parts)

    def _foldable_aggregate(self, instr: MalInstruction,
                            partitions: Dict[str, List[str]]) -> bool:
        return (
            instr.module == "aggr"
            and instr.function in _AGG_FOLD
            and len(instr.args) == 1
            and isinstance(instr.args[0], Var)
            and instr.args[0].name in partitions
            and len(instr.results) == 1
        )

    def _emit_folded_aggregate(self, out: MalProgram, instr: MalInstruction,
                               partitions: Dict[str, List[str]]) -> None:
        """Per-partition aggregates folded through a partials BAT.

        An empty partition yields a nil partial (except ``count``), so
        the fold must skip nils — re-aggregating a BAT of partials does
        exactly that, mirroring MonetDB's mergetable rewrite.
        """
        from repro.mal.ast import bat_of
        from repro.storage.types import DBL, LNG, OID

        parts = partitions[instr.args[0].name]
        result_spec = out.type_of(instr.results[0])
        if instr.function == "count":
            tail_type = LNG
        elif result_spec.tail is not None:
            tail_type = result_spec.tail
        else:
            tail_type = DBL
        partials: List[str] = []
        for part in parts:
            var = out.new_var(out.type_of(instr.results[0]))
            out.add("aggr", instr.function, [Var(part)], [var])
            partials.append(var)
        accumulator = out.new_var(bat_of(tail_type))
        out.add("bat", "new", [Const(None, OID), Const(None, tail_type)],
                [accumulator])
        for partial in partials:
            next_var = out.new_var(bat_of(tail_type))
            out.add("bat", "append", [Var(accumulator), Var(partial)],
                    [next_var])
            accumulator = next_var
        # partial counts are summed; sums/mins/maxes re-aggregate; the
        # final value lands in the original result name so downstream
        # instructions keep working untouched
        fold = "sum" if instr.function == "count" else instr.function
        out.add("aggr", fold, [Var(accumulator)], [instr.results[0]])

    def _emit_with_packs(self, out: MalProgram, instr: MalInstruction,
                         partitions: Dict[str, List[str]],
                         packed: Dict[str, str]) -> None:
        new_args = []
        for arg in instr.args:
            if isinstance(arg, Var) and arg.name in partitions:
                pack_var = packed.get(arg.name)
                if pack_var is None:
                    pack_var = out.new_var(out.type_of(arg.name))
                    out.add(
                        "mat", "pack",
                        [Var(p) for p in partitions[arg.name]],
                        [pack_var],
                    )
                    packed[arg.name] = pack_var
                new_args.append(Var(pack_var))
            else:
                new_args.append(arg)
        instr.args = new_args
        out.instructions.append(instr)


# --------------------------------------------------------------------------
# fragment extraction (for the process-based partition worker pool)
# --------------------------------------------------------------------------

#: Modules whose instructions are pure value transforms safe to run in a
#: worker process: no catalog access, no result-set side effects, no use
#: of ``ctx`` beyond the variable environment.
_SHIPPABLE_MODULES = frozenset(("algebra", "batcalc", "aggr"))
_SHIPPABLE_EXTRA = frozenset(("bat.mirror",))


@dataclass(frozen=True)
class PlanFragment:
    """One partition's slice of a mitosis-rewritten plan, self-contained.

    A fragment is the maximal chain of partition-transparent
    instructions that touch exactly one partition's data.  ``inputs``
    (partition binds plus any unpartitioned columns) must be provided by
    the caller; running the member instructions in program order then
    defines every variable in ``outputs`` (consumed by the rest of the
    plan — ``mat.pack``, aggregate folds) and ``locals`` (intermediates
    no one outside the fragment reads, so only their shape matters).
    """

    partition: int
    pcs: Tuple[int, ...]
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    locals: Tuple[str, ...]


def extract_fragments(program: MalProgram) -> List[PlanFragment]:
    """Partition-parallel fragments of a mitosis-rewritten ``program``.

    Walks the plan once, tracking which variables belong to which
    partition: the results of 7-argument partition binds seed the
    ownership map, and every shippable instruction whose variable
    arguments all belong to one partition joins that partition's
    fragment (its results inherit the owner).  Anything else — packs,
    fold chains, result-set construction — stays residual.  Plans the
    mitosis pass left alone (or rewrote without partition binds) yield
    no fragments, which callers treat as "run in process".
    """
    owner: Dict[str, int] = {}
    members: Dict[int, List[MalInstruction]] = {}
    for instr in program.instructions:
        if (instr.qualified_name == "sql.bind" and len(instr.args) == 7
                and isinstance(instr.args[5], Const)
                and len(instr.results) == 1):
            owner[instr.results[0]] = int(instr.args[5].value)
            continue
        arg_parts = {owner[a.name] for a in instr.args
                     if isinstance(a, Var) and a.name in owner}
        if len(arg_parts) != 1:
            continue
        shippable = (instr.module in _SHIPPABLE_MODULES
                     or instr.qualified_name in _SHIPPABLE_EXTRA)
        if not shippable or not instr.results:
            continue
        part = arg_parts.pop()
        members.setdefault(part, []).append(instr)
        for result in instr.results:
            owner[result] = part

    member_pcs: Set[int] = {i.pc for batch in members.values()
                            for i in batch}
    # a member result is an *output* when a residual instruction other
    # than ``language.pass`` (which only releases the variable) reads it
    consumed: Set[str] = set()
    for instr in program.instructions:
        if instr.pc in member_pcs or instr.qualified_name == "language.pass":
            continue
        for arg in instr.args:
            if isinstance(arg, Var):
                consumed.add(arg.name)

    fragments: List[PlanFragment] = []
    for part in sorted(members):
        batch = members[part]
        produced = {r for i in batch for r in i.results}
        inputs: List[str] = []
        for instr in batch:
            for arg in instr.args:
                if isinstance(arg, Var) and arg.name not in produced \
                        and arg.name not in inputs:
                    inputs.append(arg.name)
        outputs = [r for i in batch for r in i.results if r in consumed]
        internal = [r for i in batch for r in i.results
                    if r not in consumed]
        fragments.append(PlanFragment(
            partition=part,
            pcs=tuple(i.pc for i in batch),
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            locals=tuple(internal),
        ))
    return fragments
