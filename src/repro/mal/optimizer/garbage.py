"""The garbage-collector pass: release BATs right after their last use.

MonetDB's ``garbageCollector`` optimizer appends ``language.pass(X)``
statements so the interpreter can free intermediate BATs as early as
possible.  These administrative instructions are prominent in real plans
— they are a large part of what the paper's *selective pruning* feature
removes from the display — so the pass matters for plan-shape fidelity
even though our interpreter's memory accounting treats them as no-ops.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.mal.ast import MalInstruction, MalProgram, Var
from repro.mal.optimizer.base import rebuild_program


class GarbageCollector:
    """Insert ``language.pass`` after the last use of each variable."""

    name = "garbage_collector"

    #: results of these functions must never be "freed" (result plumbing
    #: and transaction context live until the end of the plan)
    _PROTECTED_SOURCES = {
        "sql.mvc", "sql.resultSet", "sql.rsColumn",
    }

    def run(self, program: MalProgram) -> MalProgram:
        last_use: Dict[str, int] = {}
        producers: Dict[str, MalInstruction] = {}
        for instr in program.instructions:
            for name in instr.uses():
                last_use[name] = instr.pc
            for name in instr.results:
                producers[name] = instr
        already_passed: Set[str] = {
            instr.args[0].name
            for instr in program.instructions
            if instr.qualified_name == "language.pass" and instr.args
            and isinstance(instr.args[0], Var)
        }
        releases_after: Dict[int, List[str]] = {}
        for name, pc in last_use.items():
            producer = producers.get(name)
            if producer is None:
                continue
            if producer.qualified_name in self._PROTECTED_SOURCES:
                continue
            if name in already_passed:
                continue
            # only BAT-typed variables are worth releasing
            spec = program.type_of(name)
            if not spec.is_bat:
                continue
            releases_after.setdefault(pc, []).append(name)
        if not releases_after:
            return program
        rebuilt: List[MalInstruction] = []
        for instr in program.instructions:
            rebuilt.append(instr)
            for name in releases_after.get(instr.pc, ()):  # insertion order
                rebuilt.append(MalInstruction(
                    [], "language", "pass", [Var(name)]
                ))
        return rebuild_program(program, rebuilt)
