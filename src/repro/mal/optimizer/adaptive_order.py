"""Adaptive selection ordering: observed selectivity drives plan shape.

The SQL front end emits pushable predicates as a *select chain* over one
table's candidate list, in syntactic order::

    sel0  := algebra.select(bind_a, ...)        # link 0
    cand0 := bat.mirror(sel0)
    src1  := algebra.leftjoin(cand0, bind_b)    # link 1
    sel1  := algebra.select(src1, ...)
    cand1 := algebra.semijoin(cand0, sel1)
    ...

Each link intersects the running candidate list with one predicate's
matching positions, so the links commute: every order produces the same
final candidate set — the ascending list of row ids passing *all*
predicates.  (Selection kernels return ascending positions, ``mirror``
and ``semijoin`` preserve ascending order and the tail==head candidate
invariant, hence the final candidate is ``sorted(intersection)``
regardless of link order; ``tests/test_adaptive.py`` pins this down.)
What order *does* change is cost: running the most selective predicate
first shrinks the candidate list — and with it every later link's
``leftjoin``/``semijoin`` input — as early as possible.

This pass reorders chain links most-selective-first using the observed
selectivities the :class:`~repro.stats.StatsStore` accumulated from
profiler traces (LOGER-style learned cardinalities rather than a static
estimator).  With no stats — or when the observed order is already
optimal — the program is returned *unchanged and identical*, so running
without feedback reproduces today's plans byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.mal.ast import Const, MalInstruction, MalProgram, Var, bat_of
from repro.mal.optimizer.base import rebuild_program
from repro.metrics.families import ADAPTIVE_REORDERS
from repro.stats import StatsStore, select_signature

_SELECTS = frozenset((
    "algebra.select", "algebra.thetaselect", "algebra.likeselect",
))


class _Link:
    """One predicate of a select chain, in re-emittable form."""

    __slots__ = ("pcs", "bind_var", "qname", "consts", "sel_type",
                 "src_type", "cand_var")

    def __init__(self, pcs: Set[int], bind_var: Var, qname: str,
                 consts: Sequence[Const], sel_type, src_type,
                 cand_var: str) -> None:
        self.pcs = pcs              # chain-owned pcs (not the bind)
        self.bind_var = bind_var    # the sql.bind result feeding the link
        self.qname = qname          # algebra.select / thetaselect / like
        self.consts = list(consts)  # the constant predicate arguments
        self.sel_type = sel_type    # TypeSpec of the selection result
        self.src_type = src_type    # TypeSpec of the leftjoin projection
        self.cand_var = cand_var    # candidate produced by this link


class _Rewrite:
    __slots__ = ("chain_pcs", "insert_at", "moved_bind_pcs", "emit")

    def __init__(self, chain_pcs: Set[int], insert_at: int,
                 moved_bind_pcs: List[int],
                 emit: List[MalInstruction]) -> None:
        self.chain_pcs = chain_pcs
        self.insert_at = insert_at
        self.moved_bind_pcs = moved_bind_pcs
        self.emit = emit


class AdaptiveOrder:
    """Reorder commutable select chains by observed selectivity.

    Attributes:
        stats: the :class:`~repro.stats.StatsStore` to consult; injected
            by ``Database._pipeline`` (like ``Mitosis.catalog``).  With
            no store the pass is inert.
        fingerprint: catalog fingerprint scoping the lookups.
    """

    name = "adaptive_order"

    def __init__(self, stats: Optional[StatsStore] = None,
                 fingerprint: Optional[Tuple] = None) -> None:
        self.stats = stats
        self.fingerprint = fingerprint

    # ------------------------------------------------------------------

    def run(self, program: MalProgram) -> MalProgram:
        if self.stats is None or self.fingerprint is None:
            return program
        chains = self._find_chains(program)
        rewrites: List[_Rewrite] = []
        for links in chains:
            rewrite = self._plan_rewrite(program, links)
            if rewrite is not None:
                rewrites.append(rewrite)
        if not rewrites:
            return program
        return self._apply(program, rewrites)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def _find_chains(self, program: MalProgram) -> List[List[_Link]]:
        defs: Dict[str, MalInstruction] = {}
        for instr in program.instructions:
            for res in instr.results:
                defs[res] = instr
        users = program.users()
        chains: List[List[_Link]] = []
        claimed: Set[int] = set()

        for instr in program.instructions:
            if instr.qualified_name != "bat.mirror" or instr.pc in claimed:
                continue
            if len(instr.args) != 1 or not isinstance(instr.args[0], Var):
                continue
            sel = defs.get(instr.args[0].name)
            first = self._as_select(sel, defs, users)
            if first is None:
                continue
            bind_var, qname, consts, sel_type = first
            # the selection must feed this mirror and nothing else
            if users.get(sel.results[0], []) != [instr.pc]:
                continue
            links = [_Link({sel.pc, instr.pc}, bind_var, qname, consts,
                           sel_type, None, instr.results[0])]
            while True:
                link = self._extend(program, links[-1], defs, users)
                if link is None:
                    break
                links.append(link)
            if len(links) >= 2:
                chains.append(links)
                for link in links:
                    claimed.update(link.pcs)
        return chains

    @staticmethod
    def _as_select(sel: Optional[MalInstruction], defs, users):
        """(bind_var, qname, consts, sel_type) when ``sel`` is a
        selection reading a ``sql.bind`` directly; else None."""
        if sel is None or sel.qualified_name not in _SELECTS:
            return None
        if not sel.args or not isinstance(sel.args[0], Var):
            return None
        if not all(isinstance(arg, Const) for arg in sel.args[1:]):
            return None
        bind = defs.get(sel.args[0].name)
        if bind is None or bind.qualified_name != "sql.bind":
            return None
        return (sel.args[0], sel.qualified_name, sel.args[1:], None)

    def _extend(self, program: MalProgram, prev: _Link,
                defs: Dict[str, MalInstruction],
                users: Dict[str, List[int]]) -> Optional[_Link]:
        """The next link consuming ``prev.cand_var``, or None.

        A candidate is extendable only when it is consumed by exactly one
        ``leftjoin`` + ``semijoin`` pair of the canonical shape, with all
        intermediates private to the link — otherwise reordering could
        change what some outside consumer observes.
        """
        reader_pcs = users.get(prev.cand_var, [])
        if len(reader_pcs) != 2:
            return None
        join = semi = None
        for candidate in (program.instructions[pc] for pc in reader_pcs):
            if candidate.qualified_name == "algebra.leftjoin":
                join = candidate
            elif candidate.qualified_name == "algebra.semijoin":
                semi = candidate
        if join is None or semi is None:
            return None
        if len(join.args) != 2 or len(semi.args) != 2:
            return None
        if not (isinstance(join.args[0], Var)
                and join.args[0].name == prev.cand_var
                and isinstance(semi.args[0], Var)
                and semi.args[0].name == prev.cand_var):
            return None
        if not isinstance(join.args[1], Var):
            return None
        bind = defs.get(join.args[1].name)
        if bind is None or bind.qualified_name != "sql.bind":
            return None
        # the projection must feed exactly one selection
        src_var = join.results[0]
        src_readers = users.get(src_var, [])
        if len(src_readers) != 1:
            return None
        sel = program.instructions[src_readers[0]]
        if sel.qualified_name not in _SELECTS:
            return None
        if not (sel.args and isinstance(sel.args[0], Var)
                and sel.args[0].name == src_var):
            return None
        if not all(isinstance(arg, Const) for arg in sel.args[1:]):
            return None
        # the selection must feed exactly the semijoin
        if users.get(sel.results[0], []) != [semi.pc]:
            return None
        if not (isinstance(semi.args[1], Var)
                and semi.args[1].name == sel.results[0]):
            return None
        return _Link({join.pc, sel.pc, semi.pc}, join.args[1],
                     sel.qualified_name, sel.args[1:], None, None,
                     semi.results[0])

    # ------------------------------------------------------------------
    # decision + rewrite
    # ------------------------------------------------------------------

    def _plan_rewrite(self, program: MalProgram,
                      links: List[_Link]) -> Optional[_Rewrite]:
        defs = program.def_sites()
        selectivities: List[float] = []
        observed = 0
        for link in links:
            column = self._column_of(program, defs, link.bind_var)
            estimate = None
            if column is not None:
                estimate = self.stats.selectivity(
                    select_signature(link.qname, column, link.consts),
                    self.fingerprint)
            if estimate is not None:
                observed += 1
            selectivities.append(1.0 if estimate is None else estimate)
        if observed == 0:
            ADAPTIVE_REORDERS.labels(outcome="unknown").inc()
            return None
        order = sorted(range(len(links)), key=lambda i: selectivities[i])
        if order == list(range(len(links))):
            ADAPTIVE_REORDERS.labels(outcome="kept").inc()
            return None
        ADAPTIVE_REORDERS.labels(outcome="reordered").inc()
        return self._build_rewrite(program, defs, links, order)

    @staticmethod
    def _column_of(program: MalProgram, defs: Dict[str, int],
                   bind_var: Var) -> Optional[str]:
        pc = defs.get(bind_var.name)
        if pc is None:
            return None
        bind = program.instructions[pc]
        if len(bind.args) < 4:
            return None
        parts = []
        for arg in bind.args[1:4]:
            if not isinstance(arg, Const):
                return None
            parts.append(str(arg.value))
        return ".".join(parts)

    def _build_rewrite(self, program: MalProgram, defs: Dict[str, int],
                       links: List[_Link],
                       order: List[int]) -> _Rewrite:
        chain_pcs: Set[int] = set()
        for link in links:
            chain_pcs.update(link.pcs)
        insert_at = min(chain_pcs)

        # record the original result types so re-emitted instructions
        # carry the same TypeSpecs (sel type per link, src type per link)
        sel_types = {}
        src_types = {}
        for link in links:
            for pc in link.pcs:
                instr = program.instructions[pc]
                qname = instr.qualified_name
                if qname in _SELECTS:
                    sel_types[id(link)] = program.var_types.get(
                        instr.results[0])
                elif qname == "algebra.leftjoin":
                    src_types[id(link)] = program.var_types.get(
                        instr.results[0])

        # binds defined after the insertion point must be hoisted up to
        # it (they depend only on the mvc and constants, so this is
        # SSA-safe); binds already above the insertion point stay put
        moved_bind_pcs: List[int] = []
        seen_binds: Set[str] = set()
        for link in links:
            name = link.bind_var.name
            if name in seen_binds:
                continue
            seen_binds.add(name)
            bind_pc = defs[name]
            if bind_pc > insert_at:
                moved_bind_pcs.append(bind_pc)
        moved_bind_pcs.sort()

        final_cand = links[-1].cand_var
        oid_bat = bat_of("oid")
        emit: List[MalInstruction] = []
        prev_cand: Optional[str] = None
        for position, index in enumerate(order):
            link = links[index]
            is_last = position == len(order) - 1
            sel_type = sel_types.get(id(link)) or bat_of("oid")
            sel_var = program.new_var(sel_type)
            if prev_cand is None:
                emit.append(MalInstruction(
                    [sel_var], link.qname.split(".")[0],
                    link.qname.split(".")[1],
                    [link.bind_var] + list(link.consts), pc=0))
                cand_var = (final_cand if is_last
                            else program.new_var(oid_bat))
                emit.append(MalInstruction(
                    [cand_var], "bat", "mirror", [Var(sel_var)], pc=0))
            else:
                src_type = src_types.get(id(link)) or sel_type
                src_var = program.new_var(src_type)
                emit.append(MalInstruction(
                    [src_var], "algebra", "leftjoin",
                    [Var(prev_cand), link.bind_var], pc=0))
                emit.append(MalInstruction(
                    [sel_var], link.qname.split(".")[0],
                    link.qname.split(".")[1],
                    [Var(src_var)] + list(link.consts), pc=0))
                cand_var = (final_cand if is_last
                            else program.new_var(oid_bat))
                emit.append(MalInstruction(
                    [cand_var], "algebra", "semijoin",
                    [Var(prev_cand), Var(sel_var)], pc=0))
            prev_cand = cand_var
        return _Rewrite(chain_pcs, insert_at, moved_bind_pcs, emit)

    @staticmethod
    def _apply(program: MalProgram,
               rewrites: List[_Rewrite]) -> MalProgram:
        emit_at: Dict[int, _Rewrite] = {
            rewrite.insert_at: rewrite for rewrite in rewrites
        }
        skip: Set[int] = set()
        for rewrite in rewrites:
            skip.update(rewrite.chain_pcs)
            skip.update(rewrite.moved_bind_pcs)
        instructions: List[MalInstruction] = []
        for instr in program.instructions:
            rewrite = emit_at.get(instr.pc)
            if rewrite is not None:
                for bind_pc in rewrite.moved_bind_pcs:
                    instructions.append(program.instructions[bind_pc])
                instructions.extend(rewrite.emit)
            if instr.pc in skip:
                continue
            instructions.append(instr)
        return rebuild_program(program, instructions)
