"""Shared helpers for optimizer passes."""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.mal.ast import Argument, Const, MalInstruction, MalProgram, Var

#: Instructions whose execution has effects beyond their result variables.
#: Passes must never remove, duplicate or reorder these relative to each
#: other.
SIDE_EFFECTS: Set[str] = {
    "sql.resultSet",
    "sql.rsColumn",
    "sql.exportResult",
    "sql.affectedRows",
    "sql.append",
    "bat.append",
    "bat.insert",
    "language.dataflow",
}

#: Pure-but-stateful allocators: safe to remove when dead, unsafe to merge.
ALLOCATORS: Set[str] = {"bat.new", "sql.mvc", "sql.resultSet"}


def has_side_effects(instr: MalInstruction) -> bool:
    """True when the instruction must be preserved regardless of uses."""
    return instr.qualified_name in SIDE_EFFECTS


def substitute_args(instr: MalInstruction,
                    replacements: Dict[str, Argument]) -> None:
    """Rewrite the instruction's Var arguments through a replacement map
    (applied transitively for Var→Var chains)."""
    new_args = []
    for arg in instr.args:
        while isinstance(arg, Var) and arg.name in replacements:
            replacement = replacements[arg.name]
            if isinstance(replacement, Var) and replacement.name == arg.name:
                break
            arg = replacement
        new_args.append(arg)
    instr.args = new_args


def rebuild_program(source: MalProgram,
                    instructions: Iterable[MalInstruction]) -> MalProgram:
    """A program with the same identity/types but a new instruction list."""
    out = MalProgram(source.name, dict(source.properties))
    out.var_types = dict(source.var_types)
    out.dataflow_enabled = source.dataflow_enabled
    out._counter = source._counter
    for instr in instructions:
        out.instructions.append(instr)
    out.renumber()
    return out
