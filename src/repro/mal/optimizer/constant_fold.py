"""Constant folding: evaluate scalar ``calc``/``mtime`` operations whose
arguments are all literals, replacing their uses with the literal result.

TPC-H predicates profit directly: ``date '1998-12-01' - interval '90'
day`` compiles to an ``mtime.adddays`` over constants, which this pass
collapses so the selection runs against a plain literal.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mal.ast import Argument, Const, MalProgram, Var
from repro.mal.modules import is_registered, lookup
from repro.mal.optimizer.base import rebuild_program, substitute_args
from repro.storage.types import infer_type, nil


class ConstantFold:
    """Fold ``calc.*`` and ``mtime.*`` instructions over literal args."""

    name = "constant_fold"

    FOLDABLE_MODULES = ("calc", "mtime")

    def run(self, program: MalProgram) -> MalProgram:
        replacements: Dict[str, Argument] = {}
        kept: List = []
        for instr in program.instructions:
            substitute_args(instr, replacements)
            if (
                instr.module in self.FOLDABLE_MODULES
                and len(instr.results) == 1
                and is_registered(instr.module, instr.function)
                and all(isinstance(a, Const) for a in instr.args)
            ):
                impl = lookup(instr.module, instr.function)
                try:
                    value = impl(None, instr, [a.value for a in instr.args])
                except Exception:
                    kept.append(instr)  # fold failure: leave for runtime
                    continue
                mal_type = None if value is nil else infer_type(value)
                replacements[instr.results[0]] = Const(value, mal_type)
                continue
            kept.append(instr)
        return rebuild_program(program, kept)
