"""Multi-worker dataflow execution of MAL plans.

MonetDB interprets a MAL plan as a dataflow graph: an instruction may run
as soon as the instructions defining its arguments have finished, and a
pool of worker threads drains the ready set.  Stethoscope's *multi-core
utilisation analysis* (paper §5, online demo) inspects the thread field of
trace events to see how well a plan parallelised.

Two schedulers are provided:

* :class:`SimulatedScheduler` — deterministic greedy list scheduling on a
  virtual microsecond clock.  Instruction durations come from the cost
  model, so the same plan and worker count always produce byte-identical
  traces.  This is what benchmarks use.
* :class:`ThreadedScheduler` — real Python threads with per-instruction
  sleeps proportional to modelled cost; produces genuinely concurrent
  wall-clock traces for the online demos.

Both honour ``program.dataflow_enabled``: when the dataflow optimizer pass
did not run (or declined), execution degrades to sequential on one worker
— reproducing the paper's observed anomaly of "sequential execution of a
MAL plan where multithreaded execution was expected".
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Set, Tuple)

from repro.errors import MalRuntimeError, ReproError, WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover — avoids a repro.server import cycle
    from repro.server.lifecycle import QueryContext
from repro.faults.plan import ACTIVE
from repro.mal.ast import MalInstruction, MalProgram
from repro.mal.interpreter import (
    CostModel,
    EvalContext,
    ExecutionResult,
    InstructionRun,
    RunListener,
    bind_precomputed,
    execute_instruction,
    precompute_fragments,
    record_execution,
)
from repro.mal.printer import format_instruction
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


def _first_bat_rows(outputs: List[Any]) -> int:
    for value in outputs:
        if isinstance(value, BAT):
            return len(value)
    return 0


class SimulatedScheduler:
    """Deterministic dataflow scheduling on a virtual clock.

    Greedy list scheduling: among instructions whose dependencies have
    completed, the one that became ready earliest (ties broken by pc) is
    assigned to the worker that frees earliest.  The emitted run records
    carry the assigned worker index in their ``thread`` field and virtual
    start/end microseconds, and the listener receives the interleaved
    start/done event stream in chronological order — exactly what the
    online Stethoscope would read off the wire.
    """

    def __init__(self, catalog: Catalog, workers: int = 4,
                 cost_model: Optional[CostModel] = None,
                 listener: Optional[RunListener] = None,
                 contention: float = 0.0,
                 pool=None) -> None:
        """``contention`` models shared-resource (memory bandwidth)
        pressure: an instruction starting while *n* other workers are
        busy runs ``1 + contention * n`` times slower.  Zero (default)
        gives the ideal-machine speedups; ~0.05-0.15 reproduces the
        sub-linear scaling real multi-cores show.

        ``pool`` is an optional
        :class:`~repro.mal.mpool.PartitionWorkerPool`: partition
        fragments precompute in worker processes before the scheduling
        loop, whose decisions (and the resulting trace) are unchanged —
        precomputed results are bound where the kernels would have run.
        """
        if workers < 1:
            raise MalRuntimeError("need at least one worker")
        if contention < 0:
            raise MalRuntimeError("contention must be non-negative")
        self.catalog = catalog
        self.workers = workers
        self.cost_model = cost_model or CostModel()
        self.listener = listener
        self.contention = contention
        self.pool = pool

    def run(self, program: MalProgram,
            context: Optional["QueryContext"] = None) -> ExecutionResult:
        """Execute ``program``; returns results plus scheduled run records.

        ``context`` (a :class:`~repro.server.lifecycle.QueryContext`)
        is checked at every dispatch, so cancellation and budget limits
        stop the plan at an instruction boundary.
        """
        program.validate()
        fault_plan = ACTIVE.plan  # captured once; stable for the run
        workers = self.workers if program.dataflow_enabled else 1
        precomputed = precompute_fragments(
            self.pool, program, self.catalog, context)
        ctx = EvalContext(self.catalog, program)
        deps = program.dependencies()
        instructions = {i.pc: i for i in program.instructions}
        pending: Dict[int, Set[int]] = {pc: set(d) for pc, d in deps.items()}
        end_times: Dict[int, int] = {}
        ready_time: Dict[int, int] = {}
        worker_free = [0] * workers
        runs: List[InstructionRun] = []
        ready: List[Tuple[int, int]] = []  # (ready_usec, pc)
        for pc, wanted in pending.items():
            if not wanted:
                heapq.heappush(ready, (0, pc))
                ready_time[pc] = 0
        scheduled = 0
        total = len(program.instructions)
        # Side-effecting result delivery must keep program order even under
        # dataflow; MonetDB serialises these on the main thread.  We model
        # that by adding an artificial dependency chain between them.
        self._chain_side_effects(program, pending, ready, ready_time)
        while scheduled < total:
            if context is not None:
                context.check(ctx.rss_bytes())
            if not ready:
                raise MalRuntimeError("dataflow deadlock: no ready instruction")
            ready_usec, pc = heapq.heappop(ready)
            instr = instructions[pc]
            widx = min(range(workers), key=lambda w: (worker_free[w], w))
            if fault_plan is not None:
                decision = fault_plan.decide("scheduler.worker",
                                             detail=str(pc))
                if decision is not None:
                    if decision.action == "crash":
                        raise WorkerCrashError(
                            f"injected crash of worker {widx} at pc={pc}")
                    if decision.action == "stall":
                        # the worker sits idle before taking the job
                        worker_free[widx] += int(decision.value or 1000)
            start = max(worker_free[widx], ready_usec)
            if pc in precomputed:
                inputs, outputs = bind_precomputed(ctx, instr,
                                                   precomputed[pc])
            else:
                inputs, outputs = execute_instruction(ctx, instr)
            cost = self.cost_model.cost_usec(instr, inputs, outputs)
            if self.contention > 0:
                busy = sum(
                    1 for w in range(workers)
                    if w != widx and worker_free[w] > start
                )
                cost = int(round(cost * (1 + self.contention * busy)))
            end = start + cost
            worker_free[widx] = end
            end_times[pc] = end
            runs.append(InstructionRun(
                pc=pc, stmt=format_instruction(instr, program),
                module=instr.module, function=instr.function,
                start_usec=start, end_usec=end, usec=cost, thread=widx,
                rss_bytes=ctx.rss_bytes(), rows=_first_bat_rows(outputs),
                rows_in=_first_bat_rows(inputs),
            ))
            scheduled += 1
            for succ, wanted in pending.items():
                if pc in wanted:
                    wanted.discard(pc)
                    ready_time[succ] = max(ready_time.get(succ, 0), end)
                    if not wanted:
                        heapq.heappush(ready, (ready_time[succ], succ))
        self._emit_stream(runs)
        total_usec = max((r.end_usec for r in runs), default=0)
        record_execution("simulated", runs, workers, total_usec)
        return ExecutionResult(result_sets=ctx.result_sets, runs=runs,
                               total_usec=total_usec,
                               affected_rows=ctx.affected_rows)

    def _chain_side_effects(self, program: MalProgram,
                            pending: Dict[int, Set[int]],
                            ready: List[Tuple[int, int]],
                            ready_time: Dict[int, int]) -> None:
        side_effects = [
            i.pc for i in program.instructions
            if i.qualified_name in ("sql.rsColumn", "sql.exportResult",
                                    "sql.append", "sql.affectedRows",
                                    "bat.append", "bat.insert")
        ]
        for prev, nxt in zip(side_effects, side_effects[1:]):
            if nxt in pending and not pending[nxt]:
                # was ready; pull it back out of the initial ready heap
                ready[:] = [(t, pc) for (t, pc) in ready if pc != nxt]
                heapq.heapify(ready)
            pending[nxt].add(prev)

    def _emit_stream(self, runs: List[InstructionRun]) -> None:
        if self.listener is None:
            return
        events: List[Tuple[int, int, str, InstructionRun]] = []
        for run in runs:
            events.append((run.start_usec, run.pc, "start", run))
            events.append((run.end_usec, run.pc, "done", run))
        events.sort(key=lambda e: (e[0], e[1], e[2] == "done"))
        for _usec, _pc, phase, run in events:
            self.listener(phase, run)


class ThreadedScheduler:
    """Dataflow execution on real Python threads.

    Each worker pops ready instructions from a shared queue; durations are
    enforced with ``time.sleep(cost * realtime_scale)`` so concurrency is
    real (sleeps release the GIL) while staying fast.  Timestamps are
    wall-clock microseconds since query start; events reach the listener
    live, from the worker threads, in true arrival order.
    """

    def __init__(self, catalog: Catalog, workers: int = 4,
                 cost_model: Optional[CostModel] = None,
                 listener: Optional[RunListener] = None,
                 realtime_scale: float = 1e-3,
                 pool=None) -> None:
        if workers < 1:
            raise MalRuntimeError("need at least one worker")
        self.catalog = catalog
        self.workers = workers
        self.cost_model = cost_model or CostModel()
        self.listener = listener
        self.realtime_scale = realtime_scale
        self.pool = pool

    def run(self, program: MalProgram,
            context: Optional["QueryContext"] = None) -> ExecutionResult:
        """Execute ``program`` on the worker pool; blocks until done.

        Workers check ``context`` between instructions, so a cancel (or
        an expired deadline) stops the plan within one instruction
        boundary instead of waiting for the whole plan.
        """
        program.validate()
        fault_plan = ACTIVE.plan  # captured once; stable for the run
        workers = self.workers if program.dataflow_enabled else 1
        precomputed = precompute_fragments(
            self.pool, program, self.catalog, context)
        ctx = EvalContext(self.catalog, program)
        deps = program.dependencies()
        pending: Dict[int, Set[int]] = {pc: set(d) for pc, d in deps.items()}
        instructions = {i.pc: i for i in program.instructions}
        lock = threading.Lock()
        ready_cv = threading.Condition(lock)
        ready: List[int] = sorted(pc for pc, d in pending.items() if not d)
        done: Set[int] = set()
        runs: List[InstructionRun] = []
        failure: List[BaseException] = []
        epoch = time.perf_counter()
        remaining = [len(program.instructions)]

        def now_usec() -> int:
            return int((time.perf_counter() - epoch) * 1_000_000)

        def worker(widx: int) -> None:
            while True:
                if context is not None:
                    try:
                        context.check()
                    except ReproError as exc:
                        with ready_cv:
                            failure.append(exc)
                            ready_cv.notify_all()
                        return
                with ready_cv:
                    while not ready and remaining[0] > 0 and not failure \
                            and not (context is not None
                                     and context.cancelled):
                        ready_cv.wait(0.05)
                    if failure or remaining[0] <= 0 or \
                            (context is not None and context.cancelled):
                        if context is not None and context.cancelled \
                                and not failure and remaining[0] > 0:
                            try:
                                context.check()
                            except ReproError as exc:
                                failure.append(exc)
                        ready_cv.notify_all()
                        return
                    pc = ready.pop(0)
                if fault_plan is not None:
                    decision = fault_plan.decide("scheduler.worker",
                                                 detail=str(pc))
                    if decision is not None:
                        if decision.action == "crash":
                            with ready_cv:
                                failure.append(WorkerCrashError(
                                    f"injected crash of worker {widx} "
                                    f"at pc={pc}"))
                                ready_cv.notify_all()
                            return
                        if decision.action == "stall":
                            time.sleep((decision.value or 1000)
                                       * self.realtime_scale / 1_000_000.0)
                instr = instructions[pc]
                stmt = format_instruction(instr, program)
                start = now_usec()
                start_run = InstructionRun(
                    pc=pc, stmt=stmt, module=instr.module,
                    function=instr.function, start_usec=start,
                    end_usec=start, usec=0, thread=widx, rss_bytes=0, rows=0,
                )
                if self.listener is not None:
                    self.listener("start", start_run)
                try:
                    with lock:
                        if context is not None:
                            context.check(ctx.rss_bytes())
                        inputs = [ctx.value_of(a) for a in instr.args]
                    if pc in precomputed:
                        outputs = list(precomputed[pc])
                    else:
                        # run the implementation outside the env lock
                        from repro.mal.interpreter import resolve_impl

                        impl = resolve_impl(instr)
                        out = impl(ctx, instr, inputs)
                        if len(instr.results) <= 1:
                            outputs = [out] if instr.results else []
                        else:
                            outputs = list(out)
                    cost = self.cost_model.cost_usec(instr, inputs, outputs)
                    if self.realtime_scale > 0:
                        time.sleep(cost * self.realtime_scale / 1_000_000.0)
                    with ready_cv:
                        for name, value in zip(instr.results, outputs):
                            ctx.env[name] = value
                        end = now_usec()
                        run = InstructionRun(
                            pc=pc, stmt=stmt, module=instr.module,
                            function=instr.function, start_usec=start,
                            end_usec=end, usec=end - start, thread=widx,
                            rss_bytes=ctx.rss_bytes(),
                            rows=_first_bat_rows(outputs),
                            rows_in=_first_bat_rows(inputs),
                        )
                        runs.append(run)
                        done.add(pc)
                        remaining[0] -= 1
                        for succ, wanted in pending.items():
                            if pc in wanted:
                                wanted.discard(pc)
                                if not wanted and succ not in done:
                                    ready.append(succ)
                        ready.sort()
                        ready_cv.notify_all()
                    if self.listener is not None:
                        self.listener("done", run)
                except BaseException as exc:  # propagate to caller
                    with ready_cv:
                        failure.append(exc)
                        ready_cv.notify_all()
                    return

        threads = [
            threading.Thread(target=worker, args=(w,), daemon=True)
            for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failure:
            raise failure[0]
        runs.sort(key=lambda r: (r.start_usec, r.pc))
        total_usec = max((r.end_usec for r in runs), default=0)
        record_execution("threaded", runs, workers, total_usec)
        return ExecutionResult(result_sets=ctx.result_sets, runs=runs,
                               total_usec=total_usec,
                               affected_rows=ctx.affected_rows)
