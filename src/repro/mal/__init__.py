"""The MonetDB Assembly Language (MAL) substrate.

MAL is MonetDB's intermediate language: SQL queries compile to MAL plans,
optimizers rewrite them, and an interpreter executes them over BATs.  The
Stethoscope consumes MAL plans (as dot-file DAGs) and their execution
traces, so this package provides everything needed to produce both:

* :mod:`repro.mal.ast` — variables, instructions, programs;
* :mod:`repro.mal.parser` / :mod:`repro.mal.printer` — the MAL text format;
* :mod:`repro.mal.modules` — the instruction set (algebra, bat, aggr, ...);
* :mod:`repro.mal.interpreter` — sequential reference interpreter with
  profiler hooks;
* :mod:`repro.mal.dataflow` — multi-worker dataflow scheduling (threaded
  and deterministically simulated);
* :mod:`repro.mal.optimizer` — the optimizer pipeline (constant folding,
  dead code, CSE, mitosis, mergetable, dataflow).
"""

from repro.mal.ast import (
    Const,
    MalInstruction,
    MalProgram,
    TypeSpec,
    Var,
    bat_of,
    scalar_of,
)
from repro.mal.interpreter import ExecutionResult, Interpreter
from repro.mal.parser import parse_program
from repro.mal.printer import format_instruction, format_program

__all__ = [
    "Const",
    "ExecutionResult",
    "Interpreter",
    "MalInstruction",
    "MalProgram",
    "TypeSpec",
    "Var",
    "bat_of",
    "format_instruction",
    "format_program",
    "parse_program",
    "scalar_of",
]
