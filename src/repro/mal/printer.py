"""Textual rendering of MAL programs, matching the plan format of the
paper's Figure 1: a ``function`` header, indented instructions with type
annotations on fresh results, and an ``end`` trailer."""

from __future__ import annotations

from typing import List

from repro.mal.ast import ANY, Const, MalInstruction, MalProgram, Var


def format_argument(arg) -> str:
    """Render one argument (variable name or literal)."""
    return str(arg)


def format_instruction(instr: MalInstruction,
                       program: "MalProgram" = None) -> str:
    """Render one instruction, e.g.
    ``X_10:bat[:oid,:int] := sql.bind(X_2,"sys","lineitem","l_partkey",0);``
    """
    args = ",".join(format_argument(a) for a in instr.args)
    call = f"{instr.qualified_name}({args})"
    if not instr.results:
        return f"{call};"
    rendered: List[str] = []
    for res in instr.results:
        if program is not None:
            spec = program.type_of(res)
            rendered.append(f"{res}{spec}" if spec is not ANY else res)
        else:
            rendered.append(res)
    if len(rendered) == 1:
        lhs = rendered[0]
    else:
        lhs = "(" + ",".join(rendered) + ")"
    return f"{lhs} := {call};"


def format_program(program: MalProgram) -> str:
    """Render a whole plan as MAL text (parseable back by the parser)."""
    lines: List[str] = []
    props = ""
    if program.properties:
        inner = ",".join(f"{k}={v}" for k, v in program.properties.items())
        props = "{" + inner + "}"
    lines.append(f"function {program.name}{props}():void;")
    for instr in program.instructions:
        lines.append("    " + format_instruction(instr, program))
    short_name = program.name.split(".")[-1]
    lines.append(f"end {short_name};")
    return "\n".join(lines)
