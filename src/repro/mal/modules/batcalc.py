"""The MAL ``batcalc`` module: elementwise calculation over BATs.

Each operation accepts (BAT, BAT), (BAT, scalar) or (scalar, BAT) operand
combinations, mirroring MonetDB's overloads; nil propagates per element.
"""

from __future__ import annotations

from repro.errors import MalRuntimeError, MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT
from repro.storage.types import cast_value, nil, type_by_name

_SYMBOL = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "%",
    "eq": "==",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
    "and": "and",
    "or": "or",
}


def _binary(name: str):
    op = _SYMBOL[name]

    def impl(ctx, instr, args):
        a, b = args[0], args[1]
        if isinstance(a, BAT) and isinstance(b, BAT):
            return a.calc(b, op)
        if isinstance(a, BAT):
            return a.calc_const(b, op)
        if isinstance(b, BAT):
            return b.calc_const(a, op, swapped=True)
        raise MalTypeError(f"batcalc.{name} needs at least one BAT operand")

    impl.__doc__ = f"``batcalc.{name}``: elementwise {op} with nil propagation."
    return impl


for _name in _SYMBOL:
    register(f"batcalc.{_name}")(_binary(_name))


@register("batcalc.not")
def not_(ctx, instr, args):
    """``batcalc.not(b)``: elementwise boolean negation."""
    bat = args[0]
    if not isinstance(bat, BAT):
        raise MalTypeError("batcalc.not expects a BAT")
    out = bat.copy()
    out.tail = [nil if v is nil else (not v) for v in bat.tail]
    return out


@register("batcalc.contains")
def contains(ctx, instr, args):
    """``batcalc.contains(b, members)``: elementwise SQL IN over the
    member BAT's tail values.

    Three-valued logic: a nil element yields nil; a non-member yields
    nil (not false) when the member set itself contains nil, matching
    ``x IN (subquery)`` semantics.
    """
    bat, members = args[0], args[1]
    if not isinstance(bat, BAT) or not isinstance(members, BAT):
        raise MalTypeError("batcalc.contains expects two BAT arguments")
    member_set = {v for v in members.tail if v is not nil}
    has_nil_member = any(v is nil for v in members.tail)
    out = BAT(type_by_name("bit"))
    out.head = None if bat.head is None else list(bat.head)
    out.hseqbase = bat.hseqbase
    tail = []
    for value in bat.tail:
        if value is nil:
            tail.append(nil)
        elif value in member_set:
            tail.append(True)
        elif has_nil_member:
            tail.append(nil)
        else:
            tail.append(False)
    out.tail = tail
    return out


@register("batcalc.isnil")
def isnil(ctx, instr, args):
    """``batcalc.isnil(b)``: elementwise nil test (never nil itself)."""
    bat = args[0]
    if not isinstance(bat, BAT):
        raise MalTypeError("batcalc.isnil expects a BAT")
    out = BAT(type_by_name("bit"))
    out.head = None if bat.head is None else list(bat.head)
    out.hseqbase = bat.hseqbase
    out.tail = [v is nil for v in bat.tail]
    return out


@register("batcalc.ifthenelse")
def ifthenelse(ctx, instr, args):
    """``batcalc.ifthenelse(cond, t, f)`` with BAT condition and scalar or
    BAT branches."""
    cond = args[0]
    if not isinstance(cond, BAT):
        raise MalTypeError("batcalc.ifthenelse expects a BAT condition")

    def pick(branch, index):
        return branch.tail[index] if isinstance(branch, BAT) else branch

    sample = None
    tail = []
    for index, flag in enumerate(cond.tail):
        if flag is nil:
            tail.append(nil)
            continue
        value = pick(args[1], index) if flag else pick(args[2], index)
        tail.append(value)
        if sample is None and value is not nil:
            sample = value
    from repro.storage.types import infer_type

    out_type = infer_type(sample) if sample is not None else type_by_name("int")
    out = BAT(out_type)
    out.head = None if cond.head is None else list(cond.head)
    out.hseqbase = cond.hseqbase
    out.tail = [nil if v is nil else cast_value(v, out_type) for v in tail]
    return out


def _cast(type_name: str):
    mal_type = type_by_name(type_name)

    def impl(ctx, instr, args):
        bat = args[0]
        if not isinstance(bat, BAT):
            raise MalTypeError(f"batcalc.{type_name} expects a BAT")
        out = BAT(mal_type)
        out.head = None if bat.head is None else list(bat.head)
        out.hseqbase = bat.hseqbase
        out.tail = [cast_value(v, mal_type) for v in bat.tail]
        return out

    impl.__doc__ = f"``batcalc.{type_name}(b)``: elementwise cast to {type_name}."
    return impl


for _type_name in ("bit", "int", "lng", "flt", "dbl", "str", "oid"):
    register(f"batcalc.{_type_name}")(_cast(_type_name))
