"""The MAL ``algebra`` module: selections, joins, projections, ordering.

These carry the old (2012-era) MonetDB semantics the paper's plans use:
``algebra.select`` returns qualifying (oid, value) associations and
``algebra.leftjoin`` matches a tail column against a head column.
"""

from __future__ import annotations

from repro.errors import MalRuntimeError, MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT


def _require_bat(value, name: str) -> BAT:
    if not isinstance(value, BAT):
        raise MalTypeError(f"{name} expects a BAT argument, got {type(value).__name__}")
    return value


@register("algebra.select")
def select(ctx, instr, args):
    """``select(b, val)`` point or ``select(b, low, high[, li, hi])`` range
    selection over the tail."""
    bat = _require_bat(args[0], "algebra.select")
    if len(args) == 2:
        return bat.select(args[1])
    if len(args) == 3:
        return bat.select(args[1], args[2])
    if len(args) == 5:
        return bat.select(args[1], args[2], include_low=bool(args[3]),
                          include_high=bool(args[4]))
    raise MalRuntimeError("algebra.select expects 2, 3 or 5 arguments")


@register("algebra.thetaselect")
def thetaselect(ctx, instr, args):
    """``thetaselect(b, val, op)`` selection with a comparison operator."""
    bat = _require_bat(args[0], "algebra.thetaselect")
    return bat.thetaselect(args[1], str(args[2]))


@register("algebra.likeselect")
def likeselect(ctx, instr, args):
    """``likeselect(b, pattern)`` SQL LIKE selection over string tails."""
    bat = _require_bat(args[0], "algebra.likeselect")
    return bat.likeselect(str(args[1]))


@register("algebra.leftjoin")
def leftjoin(ctx, instr, args):
    """``leftjoin(a, b)``: match a's tail against b's head, keep a's order."""
    return _require_bat(args[0], "algebra.leftjoin").leftjoin(
        _require_bat(args[1], "algebra.leftjoin")
    )


@register("algebra.leftfetchjoin")
def leftfetchjoin(ctx, instr, args):
    """``leftfetchjoin(a, b)``: positional projection, errors on misses."""
    return _require_bat(args[0], "algebra.leftfetchjoin").leftfetchjoin(
        _require_bat(args[1], "algebra.leftfetchjoin")
    )


@register("algebra.join")
def join(ctx, instr, args):
    """``join(a, b)``: equi-join a's tail with b's head."""
    return _require_bat(args[0], "algebra.join").join(
        _require_bat(args[1], "algebra.join")
    )


@register("algebra.semijoin")
def semijoin(ctx, instr, args):
    """``semijoin(a, b)``: keep a's associations whose head occurs in b."""
    return _require_bat(args[0], "algebra.semijoin").semijoin(
        _require_bat(args[1], "algebra.semijoin")
    )


@register("algebra.kdifference")
def kdifference(ctx, instr, args):
    """``kdifference(a, b)``: drop a's associations whose head occurs in b."""
    return _require_bat(args[0], "algebra.kdifference").kdifference(
        _require_bat(args[1], "algebra.kdifference")
    )


@register("algebra.markT")
def mark_t(ctx, instr, args):
    """``markT(b[, base])``: renumber the head as a dense sequence."""
    bat = _require_bat(args[0], "algebra.markT")
    base = int(args[1]) if len(args) > 1 else 0
    return bat.mark(base)


@register("algebra.slice")
def slice_(ctx, instr, args):
    """``slice(b, first, last)``: positional window, both ends inclusive."""
    bat = _require_bat(args[0], "algebra.slice")
    return bat.slice_(int(args[1]), int(args[2]))


@register("algebra.sortTail")
def sort_tail(ctx, instr, args):
    """``sortTail(b)``: ascending stable sort on tail values."""
    return _require_bat(args[0], "algebra.sortTail").sort()


@register("algebra.sortReverseTail")
def sort_reverse_tail(ctx, instr, args):
    """``sortReverseTail(b)``: descending stable sort on tail values."""
    return _require_bat(args[0], "algebra.sortReverseTail").sort(reverse=True)


@register("algebra.project")
def project(ctx, instr, args):
    """``project(b, v)``: constant tail ``v`` under b's head column."""
    bat = _require_bat(args[0], "algebra.project")
    return bat.project(args[1])
