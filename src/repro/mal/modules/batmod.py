"""The MAL ``bat`` module: BAT construction and column manipulation."""

from __future__ import annotations

from repro.errors import MalRuntimeError, MalTypeError
from repro.mal.ast import Const
from repro.mal.modules import register
from repro.storage.bat import BAT
from repro.storage.types import type_by_name


def _require_bat(value, name: str) -> BAT:
    if not isinstance(value, BAT):
        raise MalTypeError(f"{name} expects a BAT argument, got {type(value).__name__}")
    return value


@register("bat.new")
def new(ctx, instr, args):
    """``bat.new(nil:oid, nil:<tail>)``: an empty BAT.

    The tail type comes from the literal type annotation of the second
    argument, or from the instruction's declared result type.
    """
    tail_type = None
    if len(instr.args) >= 2 and isinstance(instr.args[1], Const):
        tail_type = instr.args[1].mal_type
    if tail_type is None and instr.results:
        spec = None
        if ctx.program is not None:
            spec = ctx.program.type_of(instr.results[0])
        if spec is not None and spec.is_bat and spec.tail is not None:
            tail_type = spec.tail
    if tail_type is None:
        raise MalRuntimeError("bat.new cannot determine its tail type")
    return BAT(tail_type)


@register("bat.append")
def append(ctx, instr, args):
    """``bat.append(b, v)``: append a value; returns the same BAT."""
    bat = _require_bat(args[0], "bat.append")
    bat.append(args[1])
    return bat


@register("bat.insert")
def insert(ctx, instr, args):
    """``bat.insert(b, src)``: append all of src's tail values to b."""
    bat = _require_bat(args[0], "bat.insert")
    src = _require_bat(args[1], "bat.insert")
    bat.extend(src.tail)
    return bat


@register("bat.reverse")
def reverse(ctx, instr, args):
    """``bat.reverse(b)``: swap head and tail columns."""
    return _require_bat(args[0], "bat.reverse").reverse()


@register("bat.mirror")
def mirror(ctx, instr, args):
    """``bat.mirror(b)``: (head, head) identity pairs."""
    return _require_bat(args[0], "bat.mirror").mirror()


@register("bat.copy")
def copy(ctx, instr, args):
    """``bat.copy(b)``: an independent copy."""
    return _require_bat(args[0], "bat.copy").copy()


@register("bat.setName")
def set_name(ctx, instr, args):
    """``bat.setName(b, name)``: administrative no-op kept for plan shape."""
    return _require_bat(args[0], "bat.setName")
