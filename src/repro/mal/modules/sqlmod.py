"""The MAL ``sql`` module: catalog binding and result-set delivery.

A compiled SQL query starts with ``sql.mvc()`` (a handle to the SQL
transaction context), binds its columns with ``sql.bind``, and ends by
building a result set: ``sql.resultSet`` / ``sql.rsColumn`` /
``sql.exportResult``, after which the interpreter's context owns the
finished :class:`ResultSet`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import MalRuntimeError, MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT
from repro.storage.types import OID


class MvcHandle:
    """Opaque handle returned by ``sql.mvc()`` (transaction context)."""

    __slots__ = ("catalog",)

    def __init__(self, catalog) -> None:
        self.catalog = catalog

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "MvcHandle()"


class ResultSet:
    """A finished query result: named, typed columns of equal length."""

    def __init__(self) -> None:
        self.names: List[str] = []
        self.tables: List[str] = []
        self.types: List[str] = []
        self.columns: List[List[Any]] = []

    def add_column(self, table: str, name: str, type_name: str,
                   values: List[Any]) -> None:
        if self.columns and len(values) != len(self.columns[0]):
            raise MalRuntimeError(
                "result set columns must have equal length: "
                f"{len(values)} vs {len(self.columns[0])}"
            )
        self.tables.append(table)
        self.names.append(name)
        self.types.append(type_name)
        self.columns.append(values)

    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def rows(self) -> List[Tuple[Any, ...]]:
        """Materialise the rows as tuples."""
        return list(zip(*self.columns)) if self.columns else []

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ResultSet({self.names}, {self.row_count()} rows)"


@register("sql.mvc")
def mvc(ctx, instr, args):
    """``sql.mvc()``: obtain the SQL transaction context handle."""
    return MvcHandle(ctx.catalog)


@register("sql.bind")
def bind(ctx, instr, args):
    """``sql.bind(mvc, schema, table, column, access)``: the column's BAT.

    ``access`` 0 binds the full column.  The mitosis optimizer rewrites
    plans to the 7-argument partition form
    ``sql.bind(mvc, s, t, c, access, part, nparts)``, which binds the
    part'th horizontal slice with its original head oids preserved.
    """
    if not isinstance(args[0], MvcHandle):
        raise MalTypeError("sql.bind expects an mvc handle first")
    schema, table, column = str(args[1]), str(args[2]), str(args[3])
    bat = ctx.catalog.bind(schema, table, column)
    if len(args) <= 5:
        return bat
    part, nparts = int(args[5]), int(args[6])
    if nparts <= 0 or not (0 <= part < nparts):
        raise MalRuntimeError(f"sql.bind: bad partition {part}/{nparts}")
    total = bat.count()
    first = part * total // nparts
    last = (part + 1) * total // nparts - 1
    return bat.slice_(first, last)


@register("sql.tid")
def tid(ctx, instr, args):
    """``sql.tid(mvc, schema, table)``: the table's visible oids as a
    (void, oid) BAT — the candidate list of all rows."""
    if not isinstance(args[0], MvcHandle):
        raise MalTypeError("sql.tid expects an mvc handle first")
    table = ctx.catalog.schema(str(args[1])).table(str(args[2]))
    return BAT(OID, list(range(table.row_count())))


@register("sql.resultSet")
def result_set(ctx, instr, args):
    """``sql.resultSet(ncols, nrows)``: start building a result set."""
    return ResultSet()


@register("sql.rsColumn")
def rs_column(ctx, instr, args):
    """``sql.rsColumn(rs, table, column, type, b)``: append one column.

    Accepts a BAT (its tail is exported) or a scalar (a one-row column),
    which is how aggregates without GROUP BY are returned.
    """
    rs = args[0]
    if not isinstance(rs, ResultSet):
        raise MalTypeError("sql.rsColumn expects a result set first")
    value = args[4]
    values = list(value.tail) if isinstance(value, BAT) else [value]
    rs.add_column(str(args[1]), str(args[2]), str(args[3]), values)
    return rs


@register("sql.exportResult")
def export_result(ctx, instr, args):
    """``sql.exportResult(rs)``: hand the finished result to the client."""
    rs = args[0]
    if not isinstance(rs, ResultSet):
        raise MalTypeError("sql.exportResult expects a result set")
    ctx.result_sets.append(rs)
    return None


@register("sql.single")
def single(ctx, instr, args):
    """``sql.single(b)``: the scalar value of a one-row column.

    SQL scalar-subquery semantics: an empty input yields nil; more than
    one row is a runtime error.
    """
    bat = args[0]
    if not isinstance(bat, BAT):
        return bat  # already scalar (aggregate subquery)
    if bat.count() == 0:
        return None
    if bat.count() > 1:
        raise MalRuntimeError(
            f"scalar subquery returned {bat.count()} rows"
        )
    return bat.tail[0]


@register("sql.affectedRows")
def affected_rows(ctx, instr, args):
    """``sql.affectedRows(mvc, n)``: record a DML row count."""
    ctx.affected_rows = int(args[1])
    return None


@register("sql.append")
def append(ctx, instr, args):
    """``sql.append(mvc, schema, table, column, b)``: append a BAT's tail
    to a stored column (simplified single-column INSERT path)."""
    if not isinstance(args[0], MvcHandle):
        raise MalTypeError("sql.append expects an mvc handle first")
    target = ctx.catalog.bind(str(args[1]), str(args[2]), str(args[3]))
    source = args[4]
    values = source.tail if isinstance(source, BAT) else [source]
    target.extend(values)
    return args[0]
