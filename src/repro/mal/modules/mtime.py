"""The MAL ``mtime`` module: date arithmetic for TPC-H style predicates."""

from __future__ import annotations

import datetime

from repro.errors import MalTypeError
from repro.mal.modules import register
from repro.storage.types import cast_value, nil, DATE


def _as_date(value):
    if value is nil:
        return nil
    return cast_value(value, DATE)


@register("mtime.adddays")
def adddays(ctx, instr, args):
    """``mtime.adddays(d, n)``: date plus n days (nil-propagating)."""
    date = _as_date(args[0])
    if date is nil or args[1] is nil:
        return nil
    return date + datetime.timedelta(days=int(args[1]))


@register("mtime.addmonths")
def addmonths(ctx, instr, args):
    """``mtime.addmonths(d, n)``: date plus n months, clamping the day to
    the target month's length (SQL interval semantics)."""
    date = _as_date(args[0])
    if date is nil or args[1] is nil:
        return nil
    months = int(args[1])
    total = date.year * 12 + (date.month - 1) + months
    year, month = divmod(total, 12)
    month += 1
    day = min(date.day, _days_in_month(year, month))
    return datetime.date(year, month, day)


@register("mtime.year")
def year(ctx, instr, args):
    """``mtime.year(d)``: calendar year of a date."""
    date = _as_date(args[0])
    return nil if date is nil else date.year


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = datetime.date(year + 1, 1, 1)
    else:
        nxt = datetime.date(year, month + 1, 1)
    return (nxt - datetime.timedelta(days=1)).day
