"""The MAL ``mat`` module: merge-table operations.

``mat.pack`` is the glue the *mitosis* optimizer relies on: after a plan
fragment is replicated over horizontal partitions of a table, ``mat.pack``
concatenates the per-partition results back into one BAT.
"""

from __future__ import annotations

from repro.errors import MalRuntimeError, MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT


@register("mat.pack")
def pack(ctx, instr, args):
    """``mat.pack(b1, b2, ...)``: concatenate partition results.

    Head oids are preserved (the partitions carry disjoint oid ranges), so
    positional relationships with the original table survive packing.
    """
    if not args:
        raise MalRuntimeError("mat.pack needs at least one argument")
    bats = []
    for value in args:
        if not isinstance(value, BAT):
            raise MalTypeError("mat.pack expects BAT arguments")
        bats.append(value)
    out = BAT(bats[0].tail_type)
    heads = []
    tail = []
    for bat in bats:
        heads.extend(bat.heads())
        tail.extend(bat.tail)
    out.head = heads
    out.tail = tail
    return out
