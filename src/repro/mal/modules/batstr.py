"""The MAL ``batstr`` module: elementwise string operations."""

from __future__ import annotations

import re

from repro.errors import MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT
from repro.storage.types import nil, type_by_name


def _require_str_bat(value, name: str) -> BAT:
    if not isinstance(value, BAT):
        raise MalTypeError(f"{name} expects a BAT argument")
    return value


def _map(bat: BAT, fn, out_type_name: str) -> BAT:
    out = BAT(type_by_name(out_type_name))
    out.head = None if bat.head is None else list(bat.head)
    out.hseqbase = bat.hseqbase
    out.tail = [nil if v is nil else fn(v) for v in bat.tail]
    return out


@register("batstr.like")
def like(ctx, instr, args):
    """``batstr.like(b, pattern)``: elementwise SQL LIKE giving a bit BAT
    (unlike ``algebra.likeselect``, which filters)."""
    bat = _require_str_bat(args[0], "batstr.like")
    pattern = str(args[1])
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    return _map(bat, lambda v: regex.match(v) is not None, "bit")


@register("batstr.length")
def length(ctx, instr, args):
    """``batstr.length(b)``: elementwise string length."""
    return _map(_require_str_bat(args[0], "batstr.length"), len, "int")


@register("batstr.substring")
def substring(ctx, instr, args):
    """``batstr.substring(b, start, length)``: 1-based substring."""
    bat = _require_str_bat(args[0], "batstr.substring")
    start, count = int(args[1]), int(args[2])
    begin = max(start - 1, 0)
    return _map(bat, lambda v: v[begin : begin + count], "str")


@register("batstr.toLower")
def to_lower(ctx, instr, args):
    """``batstr.toLower(b)``: elementwise lower-casing."""
    return _map(_require_str_bat(args[0], "batstr.toLower"), str.lower, "str")


@register("batstr.toUpper")
def to_upper(ctx, instr, args):
    """``batstr.toUpper(b)``: elementwise upper-casing."""
    return _map(_require_str_bat(args[0], "batstr.toUpper"), str.upper, "str")
