"""The MAL ``batmtime`` module: elementwise date operations."""

from __future__ import annotations

from repro.errors import MalTypeError
from repro.mal.modules import register
from repro.mal.modules.mtime import adddays as _scalar_adddays
from repro.mal.modules.mtime import addmonths as _scalar_addmonths
from repro.storage.bat import BAT
from repro.storage.types import nil, type_by_name


def _require_bat(value, name: str) -> BAT:
    if not isinstance(value, BAT):
        raise MalTypeError(f"{name} expects a BAT argument")
    return value


def _map(bat: BAT, fn, out_type_name: str) -> BAT:
    out = BAT(type_by_name(out_type_name))
    out.head = None if bat.head is None else list(bat.head)
    out.hseqbase = bat.hseqbase
    out.tail = [nil if v is nil else fn(v) for v in bat.tail]
    return out


@register("batmtime.year")
def year(ctx, instr, args):
    """``batmtime.year(b)``: elementwise calendar year."""
    bat = _require_bat(args[0], "batmtime.year")
    return _map(bat, lambda v: v.year, "int")


@register("batmtime.adddays")
def adddays(ctx, instr, args):
    """``batmtime.adddays(b, n)``: elementwise date plus n days."""
    bat = _require_bat(args[0], "batmtime.adddays")
    days = args[1]
    return _map(bat, lambda v: _scalar_adddays(ctx, instr, [v, days]), "date")


@register("batmtime.addmonths")
def addmonths(ctx, instr, args):
    """``batmtime.addmonths(b, n)``: elementwise date plus n months."""
    bat = _require_bat(args[0], "batmtime.addmonths")
    months = args[1]
    return _map(bat, lambda v: _scalar_addmonths(ctx, instr, [v, months]), "date")
