"""MAL instruction set: a registry of ``module.function`` implementations.

Each implementation is a Python callable ``impl(ctx, instr, args)`` where

* ``ctx`` is the interpreter's :class:`~repro.mal.interpreter.EvalContext`
  (catalog access, result-set collection, variable environment);
* ``instr`` is the :class:`~repro.mal.ast.MalInstruction` being executed
  (implementations that need type annotations or literal argument
  structure can inspect it);
* ``args`` is the list of evaluated argument values (BATs and scalars).

Implementations return a single value, or a tuple for multi-result
instructions such as ``group.new``.

Importing this package loads every standard module so that the registry
is fully populated.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import MalRuntimeError

MalImplementation = Callable[..., Any]

_REGISTRY: Dict[str, MalImplementation] = {}


def register(qualified_name: str) -> Callable[[MalImplementation], MalImplementation]:
    """Decorator registering an implementation under ``module.function``."""

    def wrap(impl: MalImplementation) -> MalImplementation:
        if qualified_name in _REGISTRY:
            raise MalRuntimeError(f"duplicate MAL implementation {qualified_name}")
        _REGISTRY[qualified_name] = impl
        return impl

    return wrap


def lookup(module: str, function: str) -> MalImplementation:
    """Find the implementation of ``module.function``.

    Raises:
        MalRuntimeError: when the instruction is not implemented.
    """
    try:
        return _REGISTRY[f"{module}.{function}"]
    except KeyError:
        raise MalRuntimeError(
            f"unknown MAL instruction {module}.{function}"
        ) from None


def is_registered(module: str, function: str) -> bool:
    """True when ``module.function`` has an implementation."""
    return f"{module}.{function}" in _REGISTRY


def registered_names() -> list:
    """All registered qualified names, sorted (for docs and tests)."""
    return sorted(_REGISTRY)


def reference_text() -> str:
    """The MAL instruction-set reference, generated from the registry.

    One section per module, one entry per function with its docstring —
    the stand-in for the MAL reference manual the paper cites ([9]).
    """
    by_module: Dict[str, list] = {}
    for qualified_name, impl in _REGISTRY.items():
        module, function = qualified_name.split(".", 1)
        by_module.setdefault(module, []).append((function, impl))
    lines = ["# MAL instruction-set reference", ""]
    lines.append(
        "Generated from the implementation registry "
        "(`repro.mal.modules.reference_text()`); regenerate after adding "
        "instructions."
    )
    lines.append("")
    for module in sorted(by_module):
        lines.append(f"## module `{module}`")
        lines.append("")
        for function, impl in sorted(by_module[module]):
            doc = (impl.__doc__ or "(undocumented)").strip()
            doc = " ".join(line.strip() for line in doc.splitlines())
            lines.append(f"* **`{module}.{function}`** — {doc}")
        lines.append("")
    return "\n".join(lines)


# Populate the registry.
from repro.mal.modules import (  # noqa: E402  (import-time registration)
    aggr,
    algebra,
    batcalc,
    batmod,
    batmtime,
    batstr,
    calc,
    groupmod,
    languagemod,
    mat,
    mtime,
    sqlmod,
)

__all__ = [
    "MalImplementation",
    "is_registered",
    "lookup",
    "register",
    "registered_names",
]
