"""The MAL ``calc`` module: scalar arithmetic, comparison and casts.

MonetDB spells these with symbolic names (``calc.+``); to keep plans
parseable by a conventional tokenizer this reproduction uses spelled-out
names (``calc.add``), a choice recorded in DESIGN.md.  nil propagates
through every operation, mirroring SQL three-valued logic.
"""

from __future__ import annotations

from repro.errors import MalRuntimeError
from repro.mal.modules import register
from repro.storage.types import cast_value, nil, type_by_name

_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: (a / b) if b else nil,
    "mod": lambda a, b: (a % b) if b else nil,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "and": lambda a, b: a and b,
    "or": lambda a, b: a or b,
    "min": min,
    "max": max,
}


def _binary(name: str):
    fn = _BINARY[name]

    def impl(ctx, instr, args):
        a, b = args[0], args[1]
        if a is nil or b is nil:
            return nil
        return fn(a, b)

    impl.__doc__ = f"``calc.{name}(a, b)`` with nil propagation."
    return impl


for _name in _BINARY:
    register(f"calc.{_name}")(_binary(_name))


@register("calc.not")
def not_(ctx, instr, args):
    """``calc.not(a)``: boolean negation, nil-propagating."""
    if args[0] is nil:
        return nil
    return not args[0]


@register("calc.neg")
def neg(ctx, instr, args):
    """``calc.neg(a)``: arithmetic negation, nil-propagating."""
    if args[0] is nil:
        return nil
    return -args[0]


@register("calc.isnil")
def isnil(ctx, instr, args):
    """``calc.isnil(a)``: true iff a is nil."""
    return args[0] is nil


@register("calc.ifthenelse")
def ifthenelse(ctx, instr, args):
    """``calc.ifthenelse(cond, t, f)``: nil condition yields nil."""
    cond = args[0]
    if cond is nil:
        return nil
    return args[1] if cond else args[2]


@register("calc.identity")
def identity(ctx, instr, args):
    """``calc.identity(a)``: pass a value through (plan glue)."""
    return args[0]


def _cast(type_name: str):
    mal_type = type_by_name(type_name)

    def impl(ctx, instr, args):
        return cast_value(args[0], mal_type)

    impl.__doc__ = f"``calc.{type_name}(a)``: cast to {type_name}."
    return impl


for _type_name in ("bit", "int", "lng", "flt", "dbl", "str", "oid", "date"):
    register(f"calc.{_type_name}")(_cast(_type_name))
