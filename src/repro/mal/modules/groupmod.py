"""The MAL ``group`` module: grouping and group refinement.

Both entry points return the (groups, extents, histogram) triple that
grouped aggregates consume.
"""

from __future__ import annotations

from repro.errors import MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT


@register("group.new")
def new(ctx, instr, args):
    """``(g, e, h) := group.new(b)``: group rows by tail value."""
    if not isinstance(args[0], BAT):
        raise MalTypeError("group.new expects a BAT argument")
    return args[0].group()


@register("group.derive")
def derive(ctx, instr, args):
    """``(g, e, h) := group.derive(g0, b)``: refine grouping g0 by b."""
    groups, values = args[0], args[1]
    if not isinstance(groups, BAT) or not isinstance(values, BAT):
        raise MalTypeError("group.derive expects BAT arguments")
    return values.refine_group(groups)
