"""The MAL ``language`` module: plan administration instructions.

These carry no data; they exist so that plans keep the administrative
instructions real MonetDB plans have — which is exactly what the paper's
planned *selective pruning* feature (reproduced in
:mod:`repro.core.pruning`) removes from the visualization.
"""

from __future__ import annotations

from repro.mal.modules import register


@register("language.pass")
def pass_(ctx, instr, args):
    """``language.pass(v)``: release a variable early; returns nothing."""
    return None


@register("language.dataflow")
def dataflow(ctx, instr, args):
    """``language.dataflow()``: marker admitting parallel interpretation of
    the instructions that follow; a no-op for the sequential interpreter."""
    return None
