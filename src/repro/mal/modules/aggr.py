"""The MAL ``aggr`` module: scalar and grouped aggregates."""

from __future__ import annotations

from repro.errors import MalRuntimeError, MalTypeError
from repro.mal.modules import register
from repro.storage.bat import BAT


def _aggregate(name: str):
    def impl(ctx, instr, args):
        if not isinstance(args[0], BAT):
            raise MalTypeError(f"aggr.{name} expects a BAT argument")
        if len(args) == 1:
            return args[0].aggregate(name)
        if len(args) == 3:
            values, groups, extents = args
            if not isinstance(groups, BAT) or not isinstance(extents, BAT):
                raise MalTypeError(f"grouped aggr.{name} expects BAT groups/extents")
            return values.grouped_aggregate(groups, len(extents), name)
        raise MalRuntimeError(f"aggr.{name} expects 1 or 3 arguments")

    impl.__doc__ = (
        f"``aggr.{name}(b)`` scalar aggregate, or ``aggr.{name}(b, g, e)``"
        " per-group aggregate over grouping g with extents e."
    )
    return impl


for _name in ("count", "sum", "min", "max", "avg"):
    register(f"aggr.{_name}")(_aggregate(_name))
