"""SVG → scene/graph parsing (the second stage of the paper's workflow).

Parses the SVG dialect produced by :mod:`repro.svg.writer` using the
standard-library XML parser, recovering node boxes (with labels and
fills), edge polylines and the graph structure they encode.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Tuple

from repro.errors import SvgError
from repro.dot.graph import Digraph
from repro.svg.model import SvgEdge, SvgNode, SvgScene

_SVG_NS = "{http://www.w3.org/2000/svg}"


def parse_svg(text: str) -> SvgScene:
    """Parse SVG text into an :class:`~repro.svg.model.SvgScene`.

    Raises:
        SvgError: on XML errors or missing structural attributes.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SvgError(f"bad SVG: {exc}") from None
    scene = SvgScene(
        width=_parse_length(root.get("width", "0")),
        height=_parse_length(root.get("height", "0")),
    )
    for group in root.iter(f"{_SVG_NS}g"):
        if group.get("class") != "node":
            continue
        node_id = group.get("id")
        if not node_id:
            raise SvgError("node group without id")
        rect = group.find(f"{_SVG_NS}rect")
        if rect is None:
            raise SvgError(f"node {node_id!r} has no rect")
        x = float(rect.get("x", "0"))
        y = float(rect.get("y", "0"))
        width = float(rect.get("width", "0"))
        height = float(rect.get("height", "0"))
        text_el = group.find(f"{_SVG_NS}text")
        label = (text_el.text or "") if text_el is not None else ""
        scene.add_node(SvgNode(
            node_id=node_id,
            x=x + width / 2, y=y + height / 2,
            width=width, height=height, label=label,
            fill=rect.get("fill", "white"),
            stroke=rect.get("stroke", "black"),
        ))
    for poly in root.iter(f"{_SVG_NS}polyline"):
        if poly.get("class") != "edge":
            continue
        src = poly.get("data-src")
        dst = poly.get("data-dst")
        if src is None or dst is None:
            raise SvgError("edge polyline without data-src/data-dst")
        scene.add_edge(SvgEdge(
            src=src, dst=dst,
            points=_parse_points(poly.get("points", "")),
            stroke=poly.get("stroke", "black"),
        ))
    return scene


def svg_to_graph(text: str) -> Digraph:
    """Rebuild the in-memory graph structure from a plan drawing.

    The Digraph's node attrs carry the recovered geometry (``x``, ``y``,
    ``width``, ``height``) next to the label, so navigation code can work
    from a parsed SVG exactly as from a fresh layout.
    """
    scene = parse_svg(text)
    graph = Digraph("from_svg")
    for node in scene.nodes.values():
        graph.add_node(node.node_id, {
            "label": node.label,
            "x": f"{node.x:.1f}",
            "y": f"{node.y:.1f}",
            "width": f"{node.width:.1f}",
            "height": f"{node.height:.1f}",
            "fill": node.fill,
        })
    for edge in scene.edges:
        graph.add_edge(edge.src, edge.dst)
    return graph


def _parse_length(text: str) -> float:
    try:
        return float(text.rstrip("px"))
    except ValueError:
        raise SvgError(f"bad SVG length {text!r}") from None


def _parse_points(text: str) -> List[Tuple[float, float]]:
    try:
        flat = [float(v) for v in text.replace(",", " ").split()]
    except ValueError:
        raise SvgError(f"bad point list {text!r}") from None
    if len(flat) % 2 != 0:
        raise SvgError(f"odd point list {text!r}")
    return list(zip(flat[0::2], flat[1::2]))
