"""Layout/scene → SVG text.

Every node renders as a ``<g class="node" id="...">`` holding a ``rect``
and a ``text``; every edge as a ``<polyline class="edge">`` carrying
``data-src``/``data-dst`` attributes, so the parser (and a browser's DOM)
can rebuild the graph structure from the drawing alone.
"""

from __future__ import annotations

from typing import Dict, Optional
from xml.sax.saxutils import escape, quoteattr

from repro.layout.geometry import Layout
from repro.svg.model import SvgEdge, SvgNode, SvgScene


def layout_to_svg(layout: Layout,
                  fills: Optional[Dict[str, str]] = None,
                  margin: float = 10.0) -> str:
    """Render a layout as SVG; ``fills`` overrides per-node fill colours
    (the colour-coded execution states)."""
    scene = layout_to_scene(layout, fills)
    return scene_to_svg(scene, margin)


def layout_to_scene(layout: Layout,
                    fills: Optional[Dict[str, str]] = None) -> SvgScene:
    """Convert a layout to the typed scene model."""
    fills = fills or {}
    scene = SvgScene(width=layout.width, height=layout.height)
    for node in layout.nodes.values():
        scene.add_node(SvgNode(
            node_id=node.node_id, x=node.x, y=node.y,
            width=node.width, height=node.height, label=node.label,
            fill=fills.get(node.node_id, "white"),
        ))
    for edge in layout.edges:
        scene.add_edge(SvgEdge(
            src=edge.src, dst=edge.dst,
            points=[(p.x, p.y) for p in edge.points],
        ))
    return scene


def scene_to_svg(scene: SvgScene, margin: float = 10.0) -> str:
    """Serialise a scene as standalone SVG text."""
    width = scene.width + 2 * margin
    height = scene.height + 2 * margin
    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.1f}" height="{height:.1f}" '
        f'viewBox="0 0 {width:.1f} {height:.1f}">',
    ]
    for edge in scene.edges:
        points = " ".join(
            f"{x + margin:.1f},{y + margin:.1f}" for x, y in edge.points
        )
        parts.append(
            f'  <polyline class="edge" data-src={quoteattr(edge.src)} '
            f'data-dst={quoteattr(edge.dst)} points="{points}" '
            f'fill="none" stroke="{edge.stroke}"/>'
        )
    for node in scene.nodes.values():
        left = node.left + margin
        top = node.top + margin
        parts.append(f'  <g class="node" id={quoteattr(node.node_id)}>')
        parts.append(
            f'    <rect x="{left:.1f}" y="{top:.1f}" '
            f'width="{node.width:.1f}" height="{node.height:.1f}" '
            f'fill="{node.fill}" stroke="{node.stroke}"/>'
        )
        parts.append(
            f'    <text x="{node.x + margin:.1f}" y="{node.y + margin:.1f}" '
            f'text-anchor="middle" dominant-baseline="middle" '
            f'font-family="monospace" font-size="11">'
            f"{escape(node.label)}</text>"
        )
        parts.append("  </g>")
    parts.append("</svg>")
    return "\n".join(parts)
