"""SVG scene model: the typed content of a generated plan drawing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SvgNode:
    """One graph node in the drawing: a labelled box."""

    node_id: str
    x: float  # centre
    y: float  # centre
    width: float
    height: float
    label: str = ""
    fill: str = "white"
    stroke: str = "black"

    @property
    def left(self) -> float:
        return self.x - self.width / 2

    @property
    def top(self) -> float:
        return self.y - self.height / 2


@dataclass
class SvgEdge:
    """One graph edge: a polyline between node boxes."""

    src: str
    dst: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    stroke: str = "black"


@dataclass
class SvgScene:
    """A parsed or generated plan drawing."""

    width: float = 0.0
    height: float = 0.0
    nodes: Dict[str, SvgNode] = field(default_factory=dict)
    edges: List[SvgEdge] = field(default_factory=list)

    def add_node(self, node: SvgNode) -> None:
        self.nodes[node.node_id] = node

    def add_edge(self, edge: SvgEdge) -> None:
        self.edges.append(edge)

    def node(self, node_id: str) -> SvgNode:
        return self.nodes[node_id]
