"""SVG intermediate representation.

The paper's workflow (§4): "As a first step the dot file gets parsed and
an intermediate scalar vector graphics (svg) representation gets created.
In the next step, the svg file gets parsed and an in memory graph
structure gets created."  This package provides both directions: a writer
from a :class:`~repro.layout.geometry.Layout` to SVG text, and a parser
that reads that SVG back into scene/graph structures.
"""

from repro.svg.model import SvgEdge, SvgNode, SvgScene
from repro.svg.parser import parse_svg, svg_to_graph
from repro.svg.writer import layout_to_svg, scene_to_svg

__all__ = [
    "SvgEdge",
    "SvgNode",
    "SvgScene",
    "layout_to_svg",
    "parse_svg",
    "scene_to_svg",
    "svg_to_graph",
]
