"""Lenses: local magnification for visual interaction (paper §3.1).

"ZGrviewer comes with a plethora of features such as set of lenses viz.
fish eye lens, etc. for visual interaction with graph nodes."  The
fisheye here uses the classic Sarkar–Brown distortion: points near the
focus spread apart, points past the radius stay put.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import VizError


class FisheyeLens:
    """A circular fisheye over virtual-space coordinates.

    Args:
        cx, cy: focus centre.
        radius: influence radius; beyond it the lens is identity.
        magnification: peak magnification at the focus (> 1).
    """

    def __init__(self, cx: float = 0.0, cy: float = 0.0,
                 radius: float = 100.0, magnification: float = 3.0) -> None:
        if radius <= 0:
            raise VizError("lens radius must be positive")
        if magnification < 1.0:
            raise VizError("magnification must be >= 1")
        self.cx = cx
        self.cy = cy
        self.radius = radius
        self.magnification = magnification

    def move_to(self, cx: float, cy: float) -> None:
        """Re-focus the lens (mouse tracking)."""
        self.cx = cx
        self.cy = cy

    def transform(self, x: float, y: float) -> Tuple[float, float]:
        """Distort one point; identity outside the lens radius."""
        dx = x - self.cx
        dy = y - self.cy
        distance = math.hypot(dx, dy)
        if distance >= self.radius or distance == 0.0:
            return (x, y)
        normalized = distance / self.radius
        d = self.magnification
        # Sarkar-Brown: g(r) = (d+1) r / (d r + 1), g(0)=0, g(1)=1
        warped = (d + 1) * normalized / (d * normalized + 1)
        factor = warped * self.radius / distance
        return (self.cx + dx * factor, self.cy + dy * factor)

    def magnification_at(self, x: float, y: float) -> float:
        """Local scale factor at a point (1.0 outside the lens)."""
        dx = x - self.cx
        dy = y - self.cy
        distance = math.hypot(dx, dy)
        if distance >= self.radius:
            return 1.0
        normalized = distance / self.radius
        d = self.magnification
        # derivative of g at r: (d+1) / (d r + 1)^2
        return (d + 1) / ((d * normalized + 1) ** 2)


class MagnifierLens:
    """A flat magnifying glass: uniform magnification inside the radius,
    identity outside (a hard-edged lens, unlike the fisheye's smooth
    distortion).  Points between ``radius/magnification`` and ``radius``
    are pushed outside the lens — the magnified disc *replaces* that
    annulus, which is how ZVTM's flat lenses behave."""

    def __init__(self, cx: float = 0.0, cy: float = 0.0,
                 radius: float = 100.0, magnification: float = 2.0) -> None:
        if radius <= 0:
            raise VizError("lens radius must be positive")
        if magnification < 1.0:
            raise VizError("magnification must be >= 1")
        self.cx = cx
        self.cy = cy
        self.radius = radius
        self.magnification = magnification

    def move_to(self, cx: float, cy: float) -> None:
        """Re-focus the lens (mouse tracking)."""
        self.cx = cx
        self.cy = cy

    def transform(self, x: float, y: float) -> Tuple[float, float]:
        """Magnify points near the focus uniformly; identity outside."""
        dx = x - self.cx
        dy = y - self.cy
        distance = math.hypot(dx, dy)
        if distance >= self.radius:
            return (x, y)
        m = self.magnification
        return (self.cx + dx * m, self.cy + dy * m)

    def magnification_at(self, x: float, y: float) -> float:
        """Uniform ``magnification`` inside, 1.0 outside."""
        distance = math.hypot(x - self.cx, y - self.cy)
        return self.magnification if distance < self.radius else 1.0
