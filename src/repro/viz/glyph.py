"""Glyphs: the fundamental graphical objects (paper §3.1).

"ZGrviewer uses a glyph object each, to represent the shape, text, and
edge" — a two-node graph with one edge therefore holds five glyphs: two
shapes, two texts, one edge.  :func:`repro.viz.vspace.build_virtual_space`
reproduces exactly that object structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.viz.color import BLACK, Color, WHITE

Bounds = Tuple[float, float, float, float]  # left, top, right, bottom


@dataclass
class Glyph:
    """Base glyph: identity, visibility and paint state."""

    glyph_id: str
    visible: bool = True

    def bounds(self) -> Bounds:
        raise NotImplementedError


@dataclass
class RectangleGlyph(Glyph):
    """A node's box shape."""

    x: float = 0.0  # centre
    y: float = 0.0  # centre
    width: float = 1.0
    height: float = 1.0
    fill: Color = WHITE
    stroke: Color = BLACK
    #: id of the owning graph node (shape glyphs belong to nodes)
    owner: Optional[str] = None

    def bounds(self) -> Bounds:
        return (
            self.x - self.width / 2, self.y - self.height / 2,
            self.x + self.width / 2, self.y + self.height / 2,
        )

    def contains(self, x: float, y: float) -> bool:
        left, top, right, bottom = self.bounds()
        return left <= x <= right and top <= y <= bottom


@dataclass
class TextGlyph(Glyph):
    """A node's label text."""

    x: float = 0.0
    y: float = 0.0
    text: str = ""
    color: Color = BLACK
    owner: Optional[str] = None

    def bounds(self) -> Bounds:
        half_width = max(len(self.text) * 3.5, 1.0)
        return (self.x - half_width, self.y - 8, self.x + half_width,
                self.y + 8)


@dataclass
class EdgeGlyph(Glyph):
    """An edge's polyline."""

    points: List[Tuple[float, float]] = field(default_factory=list)
    color: Color = BLACK
    src: Optional[str] = None
    dst: Optional[str] = None

    def bounds(self) -> Bounds:
        if not self.points:
            return (0.0, 0.0, 0.0, 0.0)
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        return (min(xs), min(ys), max(xs), max(ys))
