"""Animations: zoom level, colour and highlight transitions.

Paper §5 (offline demo): "Animation effects such as change of zoom level,
color, and transition time between highlights of nodes."  An
:class:`Animation` interpolates a float parameter from 0 to 1 over its
duration and feeds it to an apply function; the :class:`Animator` steps
all active animations on a shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import VizError
from repro.viz.camera import Camera
from repro.viz.color import Color
from repro.viz.glyph import RectangleGlyph


def linear(t: float) -> float:
    """Identity easing."""
    return t


def ease_in_out(t: float) -> float:
    """Smoothstep easing (slow-fast-slow), ZVTM's default feel."""
    return t * t * (3 - 2 * t)


class Animation:
    """One running transition.

    Args:
        duration_ms: total run time; must be positive.
        apply: called with eased progress in [0, 1] every step.
        easing: progress-shaping function.
        on_done: optional completion callback.
    """

    def __init__(self, duration_ms: float, apply: Callable[[float], None],
                 easing: Callable[[float], float] = ease_in_out,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        if duration_ms <= 0:
            raise VizError("animation duration must be positive")
        self.duration_ms = duration_ms
        self.apply = apply
        self.easing = easing
        self.on_done = on_done
        self.elapsed_ms = 0.0
        self.finished = False

    def step(self, dt_ms: float) -> None:
        if self.finished:
            return
        self.elapsed_ms += dt_ms
        t = min(1.0, self.elapsed_ms / self.duration_ms)
        self.apply(self.easing(t))
        if t >= 1.0:
            self.finished = True
            if self.on_done is not None:
                self.on_done()


class Animator:
    """Steps a set of animations on one clock."""

    def __init__(self) -> None:
        self.animations: List[Animation] = []

    def add(self, animation: Animation) -> Animation:
        self.animations.append(animation)
        return animation

    def step(self, dt_ms: float) -> None:
        """Advance every active animation; finished ones are dropped."""
        for animation in self.animations:
            animation.step(dt_ms)
        self.animations = [a for a in self.animations if not a.finished]

    @property
    def active(self) -> int:
        return len(self.animations)

    def run_to_completion(self, step_ms: float = 16.0,
                          max_steps: int = 100000) -> int:
        """Step until idle; returns steps taken (testing helper)."""
        steps = 0
        while self.animations and steps < max_steps:
            self.step(step_ms)
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # convenience factories for the three paper-named transitions
    # ------------------------------------------------------------------

    def animate_camera_to(self, camera: Camera, x: float, y: float,
                          altitude: float, duration_ms: float = 300.0) -> Animation:
        """Smooth pan+zoom to a target viewpoint (zoom-level change)."""
        x0, y0, alt0 = camera.x, camera.y, camera.altitude

        def apply(t: float) -> None:
            camera.x = x0 + (x - x0) * t
            camera.y = y0 + (y - y0) * t
            camera.altitude = alt0 + (altitude - alt0) * t

        return self.add(Animation(duration_ms, apply))

    def animate_fill(self, glyph: RectangleGlyph, target: Color,
                     duration_ms: float = 200.0) -> Animation:
        """Smooth colour transition of a node shape."""
        start = glyph.fill

        def apply(t: float) -> None:
            glyph.fill = start.lerp(target, t)

        return self.add(Animation(duration_ms, apply))

    def animate_highlight(self, glyphs: List[RectangleGlyph], accent: Color,
                          duration_ms: float = 400.0) -> Animation:
        """Pulse a set of nodes toward an accent colour and back —
        the transition between highlights of nodes."""
        starts = [g.fill for g in glyphs]

        def apply(t: float) -> None:
            # triangle wave: up in the first half, back in the second
            amount = 2 * t if t <= 0.5 else 2 * (1 - t)
            for glyph, start in zip(glyphs, starts):
                glyph.fill = start.lerp(accent, amount)

        return self.add(Animation(duration_ms, apply))
