"""Headless renderers: glyph scenes to ASCII grids or SVG files.

The paper's tool paints into a Swing window; this reproduction renders
the same glyph/camera model into inspectable artifacts instead — an
ASCII grid for terminals and tests, SVG for files and reports.
"""

from __future__ import annotations

from typing import List, Optional

from repro.viz.camera import Camera
from repro.viz.color import Color, WHITE
from repro.viz.glyph import EdgeGlyph, RectangleGlyph, TextGlyph
from repro.viz.lens import FisheyeLens
from repro.viz.vspace import VirtualSpace


class AsciiRenderer:
    """Rasterise the view into a character grid.

    Node boxes draw as ``#`` borders; coloured fills map to a letter
    (``R``ed / ``G``reen / ``.`` white-ish) so execution state is visible
    in plain text.  Useful for smoke tests and terminal demos.
    """

    def __init__(self, width: int = 100, height: int = 32) -> None:
        self.width = width
        self.height = height

    def render(self, space: VirtualSpace, camera: Camera,
               lens: Optional[FisheyeLens] = None,
               viewport_w: Optional[float] = None,
               viewport_h: Optional[float] = None) -> str:
        """Rasterise; ``viewport_w/h`` are the camera's pixel viewport
        (defaults to the grid size), scaled down to the char grid."""
        viewport_w = viewport_w if viewport_w is not None else float(self.width)
        viewport_h = viewport_h if viewport_h is not None else float(self.height)
        grid = [[" "] * self.width for _ in range(self.height)]

        def project(wx: float, wy: float):
            if lens is not None:
                wx, wy = lens.transform(wx, wy)
            sx, sy = camera.world_to_screen(wx, wy, viewport_w, viewport_h)
            return (
                int(round(sx * self.width / viewport_w)),
                int(round(sy * self.height / viewport_h)),
            )

        def plot(col: int, row: int, ch: str) -> None:
            if 0 <= col < self.width and 0 <= row < self.height:
                grid[row][col] = ch

        for glyph in space:
            if not glyph.visible:
                continue
            if isinstance(glyph, EdgeGlyph):
                for (x0, y0), (x1, y1) in zip(glyph.points, glyph.points[1:]):
                    c0, r0 = project(x0, y0)
                    c1, r1 = project(x1, y1)
                    _draw_line(plot, c0, r0, c1, r1, "|")
        boxes = {}
        for glyph in space:
            if not glyph.visible or not isinstance(glyph, RectangleGlyph):
                continue
            left, top, right, bottom = glyph.bounds()
            c0, r0 = project(left, top)
            c1, r1 = project(right, bottom)
            if glyph.owner:
                boxes[glyph.owner] = (min(c0, c1), min(r0, r1),
                                      max(c0, c1), max(r0, r1))
            fill_char = _fill_char(glyph.fill)
            for row in range(min(r0, r1), max(r0, r1) + 1):
                for col in range(min(c0, c1), max(c0, c1) + 1):
                    edge_row = row in (r0, r1)
                    edge_col = col in (c0, c1)
                    plot(col, row, "#" if edge_row or edge_col else fill_char)
        for glyph in space:
            if not glyph.visible or not isinstance(glyph, TextGlyph):
                continue
            col, row = project(glyph.x, glyph.y)
            start = col - len(glyph.text) // 2
            # clip a node label to the interior of its box, like ZVTM
            # hiding labels that do not fit at the current zoom level
            box = boxes.get(glyph.owner) if glyph.owner else None
            for offset, ch in enumerate(glyph.text):
                column = start + offset
                if box is not None:
                    left_col, top_row, right_col, bottom_row = box
                    if not (left_col < column < right_col
                            and top_row < row < bottom_row):
                        continue
                plot(column, row, ch)
        return "\n".join("".join(row).rstrip() for row in grid)


def _fill_char(color: Color) -> str:
    if color.r > 170 and color.g < 120:
        return "R"
    if color.g > 140 and color.r < 120:
        return "G"
    if (color.r, color.g, color.b) == (255, 255, 255):
        return " "
    return "."


def _draw_line(plot, c0: int, r0: int, c1: int, r1: int, ch: str) -> None:
    """Bresenham line over the plot callback."""
    dc = abs(c1 - c0)
    dr = -abs(r1 - r0)
    step_c = 1 if c1 >= c0 else -1
    step_r = 1 if r1 >= r0 else -1
    error = dc + dr
    col, row = c0, r0
    while True:
        plot(col, row, ch)
        if col == c1 and row == r1:
            return
        doubled = 2 * error
        if doubled >= dr:
            error += dr
            col += step_c
        if doubled <= dc:
            error += dc
            row += step_r


class SvgRenderer:
    """Serialise the current glyph state (colours included) as SVG."""

    def render(self, space: VirtualSpace) -> str:
        from xml.sax.saxutils import escape, quoteattr

        left, top, right, bottom = space.bounds()
        width = max(right - left, 1.0) + 20
        height = max(bottom - top, 1.0) + 20
        dx, dy = 10 - left, 10 - top
        parts = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.1f}" '
            f'height="{height:.1f}" viewBox="0 0 {width:.1f} {height:.1f}">',
        ]
        for glyph in space:
            if not glyph.visible:
                continue
            if isinstance(glyph, EdgeGlyph):
                points = " ".join(
                    f"{x + dx:.1f},{y + dy:.1f}" for x, y in glyph.points
                )
                parts.append(
                    f'  <polyline class="edge" '
                    f'data-src={quoteattr(glyph.src or "")} '
                    f'data-dst={quoteattr(glyph.dst or "")} '
                    f'points="{points}" fill="none" '
                    f'stroke="{glyph.color.to_hex()}"/>'
                )
        for glyph in space:
            if not glyph.visible:
                continue
            if isinstance(glyph, RectangleGlyph):
                glyph_left, glyph_top, _r, _b = glyph.bounds()
                parts.append(
                    f'  <rect id={quoteattr(glyph.glyph_id)} '
                    f'x="{glyph_left + dx:.1f}" y="{glyph_top + dy:.1f}" '
                    f'width="{glyph.width:.1f}" height="{glyph.height:.1f}" '
                    f'fill="{glyph.fill.to_hex()}" '
                    f'stroke="{glyph.stroke.to_hex()}"/>'
                )
            elif isinstance(glyph, TextGlyph):
                parts.append(
                    f'  <text x="{glyph.x + dx:.1f}" y="{glyph.y + dy:.1f}" '
                    f'text-anchor="middle" font-family="monospace" '
                    f'font-size="11">{escape(glyph.text)}</text>'
                )
        parts.append("</svg>")
        return "\n".join(parts)
