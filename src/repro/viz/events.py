"""The event-dispatch render queue (the paper's §4.2.1 bottleneck).

"Coloring graph nodes in an online stream is a complex task due to
rendering limitations from the Java system.  The Stethoscope uses the
Java Event Dispatch thread queuing framework for queuing up nodes to
render.  This introduces a delay of up-to 150ms between rendering of
consecutive nodes."

:class:`EventDispatchQueue` models exactly that: render tasks are queued
and drained at most one per ``min_interval_ms`` of (virtual or wall)
time.  The online monitor measures this queue's backlog to decide how
aggressively to sample the trace (benchmark E5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from repro.metrics.families import (
    RENDER_QUEUE_DEPTH,
    RENDER_QUEUE_WAIT_MS,
    RENDER_TASKS_EXECUTED,
    RENDER_TASKS_POSTED,
)


@dataclass
class RenderTask:
    """A queued render action (e.g. "colour node n7 RED")."""

    description: str
    action: Callable[[], None]
    posted_at_ms: float = 0.0
    executed_at_ms: Optional[float] = None


class EventDispatchQueue:
    """A single-threaded render queue with a minimum inter-task delay.

    Time is explicit: callers advance the clock with :meth:`run_until`,
    which executes as many queued tasks as the elapsed virtual time
    allows (one per ``min_interval_ms``).  This keeps tests and
    benchmarks deterministic while faithfully reproducing the throughput
    ceiling of the paper's Swing-based renderer.
    """

    def __init__(self, min_interval_ms: float = 150.0) -> None:
        self.min_interval_ms = min_interval_ms
        self._queue: Deque[RenderTask] = deque()
        self.executed: List[RenderTask] = []
        self.clock_ms = 0.0
        self._next_slot_ms = 0.0

    # ------------------------------------------------------------------

    def post(self, description: str, action: Callable[[], None]) -> RenderTask:
        """Queue a render task (returns it for inspection)."""
        task = RenderTask(description, action, posted_at_ms=self.clock_ms)
        self._queue.append(task)
        RENDER_TASKS_POSTED.inc()
        RENDER_QUEUE_DEPTH.set(len(self._queue))
        return task

    def pending(self) -> int:
        """Tasks waiting to run — the backlog the sampler watches."""
        return len(self._queue)

    def run_until(self, clock_ms: float) -> int:
        """Advance time to ``clock_ms``, executing due tasks; returns how
        many ran."""
        if clock_ms < self.clock_ms:
            return 0
        ran = 0
        while self._queue and self._next_slot_ms <= clock_ms:
            task = self._queue.popleft()
            execute_at = max(self._next_slot_ms, task.posted_at_ms)
            if execute_at > clock_ms:
                self._queue.appendleft(task)
                break
            task.executed_at_ms = execute_at
            task.action()
            self.executed.append(task)
            self._next_slot_ms = execute_at + self.min_interval_ms
            ran += 1
            RENDER_QUEUE_WAIT_MS.observe(execute_at - task.posted_at_ms)
        if ran:
            RENDER_TASKS_EXECUTED.inc(ran)
            RENDER_QUEUE_DEPTH.set(len(self._queue))
        self.clock_ms = clock_ms
        return ran

    def drain(self) -> int:
        """Run everything regardless of pacing (end-of-query flush);
        advances the clock to the last slot used."""
        ran = 0
        while self._queue:
            horizon = self._next_slot_ms + self.min_interval_ms * (
                len(self._queue) + 1
            )
            ran += self.run_until(max(self.clock_ms, horizon))
        return ran

    def max_latency_ms(self) -> float:
        """Worst queue latency (execution - posting) among executed tasks."""
        waits = [
            t.executed_at_ms - t.posted_at_ms
            for t in self.executed if t.executed_at_ms is not None
        ]
        return max(waits, default=0.0)

    def throughput_per_second(self) -> float:
        """Upper bound on renders per second under the configured delay."""
        if self.min_interval_ms <= 0:
            return float("inf")
        return 1000.0 / self.min_interval_ms
