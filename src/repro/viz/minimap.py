"""Minimap: the overview+detail companion to the bird's-eye view.

ZGrviewer shows an overview window with a rectangle marking the main
camera's viewport.  The :class:`Minimap` reproduces that: a fixed small
canvas showing the whole virtual space, node dots coloured by execution
state, and the current viewport rectangle of an attached view.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.viz.glyph import RectangleGlyph
from repro.viz.view import View
from repro.viz.vspace import VirtualSpace


class Minimap:
    """A small overview of a virtual space plus a viewport marker."""

    def __init__(self, space: VirtualSpace, width: int = 48,
                 height: int = 16) -> None:
        self.space = space
        self.width = width
        self.height = height

    # ------------------------------------------------------------------

    def _world_to_cell(self, wx: float, wy: float,
                       bounds) -> Tuple[int, int]:
        left, top, right, bottom = bounds
        span_x = max(right - left, 1e-9)
        span_y = max(bottom - top, 1e-9)
        col = int((wx - left) / span_x * (self.width - 1))
        row = int((wy - top) / span_y * (self.height - 1))
        return (max(0, min(self.width - 1, col)),
                max(0, min(self.height - 1, row)))

    def viewport_rectangle(self, view: View):
        """The view's world-space viewport as minimap cell bounds."""
        bounds = self.space.bounds()
        wl, wt = view.camera.screen_to_world(0, 0, view.width, view.height)
        wr, wb = view.camera.screen_to_world(view.width, view.height,
                                             view.width, view.height)
        c0, r0 = self._world_to_cell(wl, wt, bounds)
        c1, r1 = self._world_to_cell(wr, wb, bounds)
        return (min(c0, c1), min(r0, r1), max(c0, c1), max(r0, r1))

    def render(self, view: Optional[View] = None) -> str:
        """The minimap as text: ``.`` plain nodes, ``r``/``g`` coloured
        states, box-drawing for the viewport rectangle."""
        grid: List[List[str]] = [
            [" "] * self.width for _ in range(self.height)
        ]
        bounds = self.space.bounds()
        for glyph in self.space:
            if not isinstance(glyph, RectangleGlyph) or not glyph.visible:
                continue
            col, row = self._world_to_cell(glyph.x, glyph.y, bounds)
            fill = glyph.fill
            if fill.r > 170 and fill.g < 120:
                char = "r"
            elif fill.g > 140 and fill.r < 120:
                char = "g"
            else:
                char = "."
            grid[row][col] = char
        if view is not None:
            c0, r0, c1, r1 = self.viewport_rectangle(view)
            for col in range(c0, c1 + 1):
                for row in (r0, r1):
                    if grid[row][col] == " ":
                        grid[row][col] = "-"
            for row in range(r0, r1 + 1):
                for col in (c0, c1):
                    if grid[row][col] == " ":
                        grid[row][col] = "|"
            for col, row in ((c0, r0), (c1, r0), (c0, r1), (c1, r1)):
                grid[row][col] = "+"
        return "\n".join("".join(row).rstrip() for row in grid)
