"""Colour handling for execution-state display.

The paper colours nodes RED on *start* and GREEN on *done* (§4.2.1), and
lists *gradient coloring of graph nodes to display a range of execution
times* as planned future work — :meth:`Color.lerp` and
:func:`gradient_for` implement that extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VizError


@dataclass(frozen=True)
class Color:
    """An RGB colour with 8-bit channels."""

    r: int
    g: int
    b: int

    def __post_init__(self) -> None:
        for channel in (self.r, self.g, self.b):
            if not (0 <= channel <= 255):
                raise VizError(f"channel out of range in {self!r}")

    @classmethod
    def from_hex(cls, text: str) -> "Color":
        """Parse ``#rrggbb`` (or ``rrggbb``)."""
        stripped = text.lstrip("#")
        if len(stripped) != 6:
            raise VizError(f"bad hex colour {text!r}")
        try:
            return cls(
                int(stripped[0:2], 16),
                int(stripped[2:4], 16),
                int(stripped[4:6], 16),
            )
        except ValueError:
            raise VizError(f"bad hex colour {text!r}") from None

    def to_hex(self) -> str:
        return f"#{self.r:02x}{self.g:02x}{self.b:02x}"

    def lerp(self, other: "Color", t: float) -> "Color":
        """Linear interpolation toward ``other`` (t clamped to [0, 1])."""
        t = max(0.0, min(1.0, t))
        return Color(
            round(self.r + (other.r - self.r) * t),
            round(self.g + (other.g - self.g) * t),
            round(self.b + (other.b - self.b) * t),
        )


RED = Color(220, 40, 40)
GREEN = Color(40, 180, 70)
WHITE = Color(255, 255, 255)
BLACK = Color(0, 0, 0)
YELLOW = Color(240, 200, 40)


def gradient_for(value: float, low: float, high: float,
                 cold: Color = GREEN, hot: Color = RED) -> Color:
    """Map a value in [low, high] onto the cold→hot gradient.

    This is the paper's future-work *gradient coloring*: instead of binary
    RED/GREEN, a node's colour encodes where its execution time falls in
    the observed range.  Degenerate ranges map to ``cold``.
    """
    if high <= low:
        return cold
    return cold.lerp(hot, (value - low) / (high - low))
