"""Raster rendering: true-colour screenshots of the plan display.

The original Stethoscope paints into a Swing window; the closest headless
equivalent is rendering the glyph scene into an RGB pixel buffer and
writing a PPM file (the simplest lossless image format — viewable by any
image tool, convertible to PNG with any converter).  numpy keeps the
rasteriser vectorised enough for >1000-node scenes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import VizError
from repro.viz.camera import Camera
from repro.viz.color import Color, WHITE
from repro.viz.glyph import EdgeGlyph, RectangleGlyph, TextGlyph
from repro.viz.vspace import VirtualSpace


class RasterImage:
    """An RGB image backed by a numpy array (height × width × 3)."""

    def __init__(self, width: int, height: int,
                 background: Color = WHITE) -> None:
        if width <= 0 or height <= 0:
            raise VizError("image dimensions must be positive")
        self.width = width
        self.height = height
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:, :] = (background.r, background.g, background.b)

    # ------------------------------------------------------------------

    def fill_rect(self, x0: int, y0: int, x1: int, y1: int,
                  color: Color) -> None:
        """Fill an axis-aligned rectangle (clipped to the image)."""
        left, right = sorted((x0, x1))
        top, bottom = sorted((y0, y1))
        left = max(left, 0)
        top = max(top, 0)
        right = min(right, self.width - 1)
        bottom = min(bottom, self.height - 1)
        if left > right or top > bottom:
            return
        self.pixels[top:bottom + 1, left:right + 1] = (
            color.r, color.g, color.b
        )

    def outline_rect(self, x0: int, y0: int, x1: int, y1: int,
                     color: Color) -> None:
        """Draw a 1px rectangle border."""
        left, right = sorted((x0, x1))
        top, bottom = sorted((y0, y1))
        self.fill_rect(left, top, right, top, color)
        self.fill_rect(left, bottom, right, bottom, color)
        self.fill_rect(left, top, left, bottom, color)
        self.fill_rect(right, top, right, bottom, color)

    def draw_line(self, x0: int, y0: int, x1: int, y1: int,
                  color: Color) -> None:
        """Bresenham line (clipped per pixel)."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        step_x = 1 if x1 >= x0 else -1
        step_y = 1 if y1 >= y0 else -1
        error = dx + dy
        x, y = x0, y0
        while True:
            if 0 <= x < self.width and 0 <= y < self.height:
                self.pixels[y, x] = (color.r, color.g, color.b)
            if x == x1 and y == y1:
                return
            doubled = 2 * error
            if doubled >= dy:
                error += dy
                x += step_x
            if doubled <= dx:
                error += dx
                y += step_y

    def pixel(self, x: int, y: int) -> Color:
        """Read one pixel back as a Color."""
        r, g, b = self.pixels[y, x]
        return Color(int(r), int(g), int(b))

    # ------------------------------------------------------------------

    def to_ppm(self) -> bytes:
        """Serialise as binary PPM (P6)."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        return header + self.pixels.tobytes()

    def save(self, path: str) -> None:
        """Write a ``.ppm`` file."""
        with open(path, "wb") as handle:
            handle.write(self.to_ppm())


def load_ppm(path: str) -> RasterImage:
    """Read back a P6 PPM written by :meth:`RasterImage.save`."""
    with open(path, "rb") as handle:
        data = handle.read()
    parts = data.split(b"\n", 3)
    if len(parts) < 4 or parts[0] != b"P6":
        raise VizError(f"{path!r} is not a P6 PPM file")
    width, height = (int(v) for v in parts[1].split())
    image = RasterImage(width, height)
    image.pixels = np.frombuffer(
        parts[3][: width * height * 3], dtype=np.uint8
    ).reshape((height, width, 3)).copy()
    return image


class RasterRenderer:
    """Rasterise a virtual space through a camera into a RasterImage."""

    EDGE_COLOR = Color(120, 120, 120)

    def __init__(self, width: int = 1024, height: int = 768) -> None:
        self.width = width
        self.height = height

    def render(self, space: VirtualSpace, camera: Camera) -> RasterImage:
        image = RasterImage(self.width, self.height)

        def project(wx: float, wy: float) -> Tuple[int, int]:
            sx, sy = camera.world_to_screen(wx, wy, self.width, self.height)
            return int(round(sx)), int(round(sy))

        for glyph in space:
            if not glyph.visible or not isinstance(glyph, EdgeGlyph):
                continue
            for (ax, ay), (bx, by) in zip(glyph.points, glyph.points[1:]):
                x0, y0 = project(ax, ay)
                x1, y1 = project(bx, by)
                image.draw_line(x0, y0, x1, y1, self.EDGE_COLOR)
        for glyph in space:
            if not glyph.visible or not isinstance(glyph, RectangleGlyph):
                continue
            left, top, right, bottom = glyph.bounds()
            x0, y0 = project(left, top)
            x1, y1 = project(right, bottom)
            image.fill_rect(x0, y0, x1, y1, glyph.fill)
            image.outline_rect(x0, y0, x1, y1, glyph.stroke)
        return image


def screenshot(space: VirtualSpace, path: str, width: int = 1024,
               height: int = 768, camera: Optional[Camera] = None
               ) -> RasterImage:
    """One-call screenshot: fit the whole space and save a PPM."""
    if camera is None:
        camera = Camera()
        camera.fit(space.bounds(), width, height)
    image = RasterRenderer(width, height).render(space, camera)
    image.save(path)
    return image
