"""ZVTM/ZGrviewer-style visualization toolkit (headless).

The paper builds on ZGrviewer's zoomable interface: glyph objects for
every shape/text/edge, a *virtual space* canvas, *camera* objects showing
views at different zoom levels, lenses (fish-eye), animations, and the
Java Event Dispatch Thread whose queuing limits node-rendering to roughly
one recolour per 150 ms.  This package reproduces each of those concepts
with a headless renderer (ASCII for terminals/tests, SVG for files)
instead of a Swing window.
"""

from repro.viz.animation import Animation, Animator, ease_in_out, linear
from repro.viz.camera import Camera
from repro.viz.color import Color, GREEN, RED, WHITE
from repro.viz.events import EventDispatchQueue, RenderTask
from repro.viz.glyph import EdgeGlyph, Glyph, RectangleGlyph, TextGlyph
from repro.viz.lens import FisheyeLens
from repro.viz.minimap import Minimap
from repro.viz.raster import RasterImage, RasterRenderer, screenshot
from repro.viz.render import AsciiRenderer, SvgRenderer
from repro.viz.view import View
from repro.viz.vspace import VirtualSpace, build_virtual_space

__all__ = [
    "Animation",
    "Animator",
    "AsciiRenderer",
    "Camera",
    "Color",
    "EdgeGlyph",
    "EventDispatchQueue",
    "FisheyeLens",
    "GREEN",
    "Glyph",
    "Minimap",
    "RED",
    "RasterImage",
    "RasterRenderer",
    "RectangleGlyph",
    "RenderTask",
    "SvgRenderer",
    "TextGlyph",
    "View",
    "VirtualSpace",
    "WHITE",
    "build_virtual_space",
    "ease_in_out",
    "linear",
    "screenshot",
]
