"""The camera: a zoomable viewpoint over a virtual space (ZVTM model).

A camera sits at (x, y) above the canvas at some *altitude*; the higher
the altitude, the more of the space is visible and the smaller things
appear.  Screen scale follows ZVTM's perspective rule
``scale = focal / (focal + altitude)``.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import VizError


class Camera:
    """A viewpoint with smooth zoom semantics."""

    def __init__(self, x: float = 0.0, y: float = 0.0,
                 altitude: float = 100.0, focal: float = 100.0) -> None:
        if focal <= 0:
            raise VizError("focal length must be positive")
        self.x = x
        self.y = y
        self.focal = focal
        # ZVTM permits negative altitudes (the camera dips below the
        # focal plane) for magnification beyond 1:1; the floor keeps the
        # projection finite
        self.altitude = max(-focal * 0.999, altitude)

    # ------------------------------------------------------------------

    @property
    def scale(self) -> float:
        """World-to-screen magnification at the current altitude."""
        return self.focal / (self.focal + self.altitude)

    def world_to_screen(self, wx: float, wy: float,
                        viewport_w: float, viewport_h: float) -> Tuple[float, float]:
        """Project a virtual-space point into viewport pixels."""
        s = self.scale
        return (
            (wx - self.x) * s + viewport_w / 2,
            (wy - self.y) * s + viewport_h / 2,
        )

    def screen_to_world(self, sx: float, sy: float,
                        viewport_w: float, viewport_h: float) -> Tuple[float, float]:
        """Inverse projection (mouse picking)."""
        s = self.scale
        return (
            (sx - viewport_w / 2) / s + self.x,
            (sy - viewport_h / 2) / s + self.y,
        )

    # ------------------------------------------------------------------

    def pan(self, dx: float, dy: float) -> None:
        """Translate the viewpoint in world coordinates."""
        self.x += dx
        self.y += dy

    def zoom_in(self, factor: float = 1.5) -> None:
        """Decrease altitude (magnify); factor > 1."""
        if factor <= 0:
            raise VizError("zoom factor must be positive")
        self.altitude = max(
            -self.focal * 0.999,
            (self.altitude + self.focal) / factor - self.focal,
        )

    def zoom_out(self, factor: float = 1.5) -> None:
        """Increase altitude (shrink); factor > 1."""
        if factor <= 0:
            raise VizError("zoom factor must be positive")
        self.altitude = (self.altitude + self.focal) * factor - self.focal

    def look_at(self, x: float, y: float) -> None:
        """Centre the camera on a world point (keyboard navigation)."""
        self.x = x
        self.y = y

    def fit(self, bounds: Tuple[float, float, float, float],
            viewport_w: float, viewport_h: float,
            margin: float = 1.1) -> None:
        """Position and zoom so ``bounds`` fills the viewport — the
        bird's-eye-view operation."""
        left, top, right, bottom = bounds
        width = max(right - left, 1e-9) * margin
        height = max(bottom - top, 1e-9) * margin
        self.x = (left + right) / 2
        self.y = (top + bottom) / 2
        needed_scale = min(viewport_w / width, viewport_h / height)
        needed_scale = min(needed_scale, 1e6)
        self.altitude = max(-self.focal * 0.999,
                            self.focal / needed_scale - self.focal)
