"""The virtual space: the canvas on which graphs are drawn (paper §3.1).

"Other important objects are a virtual space, which represents a canvas
on which graphs are drawn and a camera object, which shows different
views at different zoom levels, in a virtual space."
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import VizError
from repro.layout.geometry import Layout
from repro.viz.glyph import EdgeGlyph, Glyph, RectangleGlyph, TextGlyph


class VirtualSpace:
    """An ordered collection of glyphs with id-based access."""

    def __init__(self, name: str = "plan") -> None:
        self.name = name
        self._glyphs: Dict[str, Glyph] = {}

    def add(self, glyph: Glyph) -> Glyph:
        """Add a glyph; ids must be unique."""
        if glyph.glyph_id in self._glyphs:
            raise VizError(f"duplicate glyph id {glyph.glyph_id!r}")
        self._glyphs[glyph.glyph_id] = glyph
        return glyph

    def remove(self, glyph_id: str) -> None:
        """Remove a glyph; raises when absent."""
        if glyph_id not in self._glyphs:
            raise VizError(f"no glyph {glyph_id!r}")
        del self._glyphs[glyph_id]

    def glyph(self, glyph_id: str) -> Glyph:
        try:
            return self._glyphs[glyph_id]
        except KeyError:
            raise VizError(f"no glyph {glyph_id!r}") from None

    def __iter__(self) -> Iterator[Glyph]:
        return iter(self._glyphs.values())

    def __len__(self) -> int:
        return len(self._glyphs)

    def __contains__(self, glyph_id: str) -> bool:
        return glyph_id in self._glyphs

    # ------------------------------------------------------------------
    # node-oriented accessors used by the Stethoscope
    # ------------------------------------------------------------------

    def shape_of(self, node_id: str) -> RectangleGlyph:
        """The shape glyph of a graph node."""
        glyph = self.glyph(f"shape:{node_id}")
        assert isinstance(glyph, RectangleGlyph)
        return glyph

    def text_of(self, node_id: str) -> TextGlyph:
        """The text glyph of a graph node."""
        glyph = self.glyph(f"text:{node_id}")
        assert isinstance(glyph, TextGlyph)
        return glyph

    def node_ids(self) -> List[str]:
        """Graph node ids present in the space (via their shape glyphs)."""
        return [
            g.owner for g in self._glyphs.values()
            if isinstance(g, RectangleGlyph) and g.owner
        ]

    def shape_at(self, x: float, y: float) -> Optional[RectangleGlyph]:
        """Topmost shape glyph containing the virtual-space point."""
        for glyph in self._glyphs.values():
            if isinstance(glyph, RectangleGlyph) and glyph.contains(x, y):
                return glyph
        return None

    def bounds(self):
        """Bounding box of all glyphs (left, top, right, bottom)."""
        boxes = [g.bounds() for g in self._glyphs.values() if g.visible]
        if not boxes:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            min(b[0] for b in boxes), min(b[1] for b in boxes),
            max(b[2] for b in boxes), max(b[3] for b in boxes),
        )


def build_virtual_space(layout: Layout, name: str = "plan") -> VirtualSpace:
    """Build the glyph scene for a laid-out plan.

    Exactly as the paper describes for ZGrviewer: one shape glyph and one
    text glyph per node, one edge glyph per edge.
    """
    space = VirtualSpace(name)
    for edge_index, edge in enumerate(layout.edges):
        space.add(EdgeGlyph(
            glyph_id=f"edge:{edge_index}",
            points=[(p.x, p.y) for p in edge.points],
            src=edge.src, dst=edge.dst,
        ))
    for node in layout.nodes.values():
        space.add(RectangleGlyph(
            glyph_id=f"shape:{node.node_id}", x=node.x, y=node.y,
            width=node.width, height=node.height, owner=node.node_id,
        ))
        space.add(TextGlyph(
            glyph_id=f"text:{node.node_id}", x=node.x, y=node.y,
            text=node.label, owner=node.node_id,
        ))
    return space
