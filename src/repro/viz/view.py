"""Views: a camera looking at a virtual space through a viewport."""

from __future__ import annotations

from typing import List, Optional

from repro.viz.camera import Camera
from repro.viz.glyph import Glyph, RectangleGlyph
from repro.viz.lens import FisheyeLens
from repro.viz.render import AsciiRenderer, SvgRenderer
from repro.viz.vspace import VirtualSpace


class View:
    """Couples a virtual space, a camera and a viewport size; offers the
    interaction primitives (pick, navigate, zoom, render) the Stethoscope
    drives via keyboard/mouse events."""

    def __init__(self, space: VirtualSpace, camera: Optional[Camera] = None,
                 width: int = 800, height: int = 600) -> None:
        self.space = space
        self.camera = camera or Camera()
        self.width = width
        self.height = height
        self.lens: Optional[FisheyeLens] = None

    # ------------------------------------------------------------------

    def fit_all(self) -> None:
        """Bird's-eye view: frame the whole space."""
        self.camera.fit(self.space.bounds(), self.width, self.height)

    def focus_node(self, node_id: str, altitude: float = 20.0) -> None:
        """Centre the camera on one node at a close zoom level."""
        shape = self.space.shape_of(node_id)
        self.camera.look_at(shape.x, shape.y)
        self.camera.altitude = altitude

    def pick(self, screen_x: float, screen_y: float) -> Optional[RectangleGlyph]:
        """Hit-test a screen coordinate (a mouse click) to a node shape."""
        wx, wy = self.camera.screen_to_world(screen_x, screen_y,
                                             self.width, self.height)
        return self.space.shape_at(wx, wy)

    def visible_glyphs(self) -> List[Glyph]:
        """Glyphs whose bounds intersect the current viewport."""
        view_left, view_top = self.camera.screen_to_world(
            0, 0, self.width, self.height
        )
        view_right, view_bottom = self.camera.screen_to_world(
            self.width, self.height, self.width, self.height
        )
        out: List[Glyph] = []
        for glyph in self.space:
            if not glyph.visible:
                continue
            left, top, right, bottom = glyph.bounds()
            if (right >= view_left and left <= view_right
                    and bottom >= view_top and top <= view_bottom):
                out.append(glyph)
        return out

    # ------------------------------------------------------------------

    def render_ascii(self, columns: int = 100, rows: int = 32) -> str:
        """Render the current view as text (what the camera sees,
        scaled onto a character grid)."""
        return AsciiRenderer(columns, rows).render(
            self.space, self.camera, self.lens,
            viewport_w=float(self.width), viewport_h=float(self.height),
        )

    def render_svg(self) -> str:
        """Render the full space (current colours) as SVG."""
        return SvgRenderer().render(self.space)
