"""Exception hierarchy for the Stethoscope reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch a single base class at API boundaries while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StorageError(ReproError):
    """Errors from the columnar storage layer (BATs, catalog)."""


class TypeMismatchError(StorageError):
    """An operation received a value or BAT of the wrong type."""


class CatalogError(StorageError):
    """Unknown schema/table/column, duplicate definitions, and similar."""


class WalError(StorageError):
    """The write-ahead log could not make a record durable.

    Raised for torn writes (the record's bytes only partially reached
    the file; the log is poisoned until recovery truncates the tail)
    and for failed fsyncs (the whole group-commit batch is rolled back
    and the unsynced tail truncated).  A statement that dies with this
    error was **never acknowledged** — recovery will not resurrect it.
    """


class CheckpointError(StorageError):
    """A checkpoint could not be written or validated.

    A failed checkpoint never truncates the WAL, so durability is
    unaffected — recovery falls back to the previous valid checkpoint
    plus a longer replay.
    """


class MalError(ReproError):
    """Errors from the MAL layer (parser, interpreter, optimizer)."""


class MalParseError(MalError):
    """The MAL text parser rejected its input."""


class MalTypeError(MalError):
    """A MAL instruction was invoked with incompatible argument types."""


class MalRuntimeError(MalError):
    """A MAL instruction failed during interpretation."""


class OptimizerError(MalError):
    """An optimizer pass could not transform the plan."""


class WorkerCrashError(MalRuntimeError):
    """A dataflow worker crashed mid-plan.

    Raised by the schedulers for injected ``scheduler.worker:crash``
    faults, and by the partition worker pool when a worker *process*
    dies (killed, OOM-killed, or an injected ``mpool.worker:crash``)
    while holding a fragment — the pool restarts the worker so the
    next query runs normally, but the in-flight query fails typed.
    """


class PartitionShipError(MalRuntimeError):
    """A shipped partition payload could not be decoded by a worker
    (corrupt bytes, e.g. an injected ``mpool.ship:truncate`` fault)."""


class FaultSpecError(ReproError):
    """A fault-injection plan spec or config could not be parsed."""


class SqlError(ReproError):
    """Errors from the SQL front end."""


class SqlParseError(SqlError):
    """The SQL parser rejected its input."""


class BindError(SqlError):
    """Name resolution failed (unknown table, column, ambiguous name)."""


class ServerError(ReproError):
    """Errors from the Mserver simulator and its client protocol."""


class ConnectionFailedError(ServerError):
    """A client could not establish (or handshake) a server connection."""


class ConnectionLostError(ServerError):
    """The server connection died mid-request (reset, premature close)."""


class RequestTimeoutError(ServerError):
    """A client request exceeded its per-request deadline."""


class QueryCancelledError(ServerError):
    """A running (or queued) query was cancelled before it finished.

    Instances raised by the lifecycle layer carry a ``query_id``
    attribute so clients can tell *which* query died.
    """

    def __init__(self, message: str, query_id: str = "") -> None:
        super().__init__(message)
        self.query_id = query_id


class QueryDeadlineError(QueryCancelledError):
    """A query ran past its server-side deadline and was force-cancelled
    (usually by the stuck-query watchdog)."""


class QueryBudgetError(QueryCancelledError):
    """A query exceeded its resource budget (simulated RSS) mid-plan."""


class ServerOverloadedError(ServerError):
    """Admission control shed the query: the execution slots were full
    and the wait queue was at capacity (or the queue wait timed out).

    The query never started executing, so re-submitting it is always
    safe — :class:`~repro.server.client.MClient` retries these with
    backoff.
    """


class ReplicationError(ServerError):
    """Errors from the WAL-shipping replication layer."""


class ReplicationFencedError(ReplicationError):
    """A replication request carried a stale epoch and was fenced.

    Raised by a follower that sees a deposed primary's stream (the
    follower's persisted epoch is higher), and by a deposed primary
    that learns of a newer epoch from a peer.  The deposed node must
    stop shipping and rejoin as a replica — its unacked tail is
    truncated exactly as crash recovery would.
    """


class ReadOnlyReplicaError(ReplicationError):
    """A write statement was sent to a read-only replica.

    Carries the current ``primary`` address (``"host:port"``, may be
    empty if unknown) so clients can re-route the write.  The write
    was rejected before execution, so re-submitting it against the
    primary is always safe.
    """

    def __init__(self, message: str, primary: str = "") -> None:
        super().__init__(message)
        self.primary = primary


class ProfilerError(ReproError):
    """Errors from the profiler and trace I/O."""


class TraceFormatError(ProfilerError):
    """A trace line or trace file could not be parsed."""


class DotError(ReproError):
    """Errors from the DOT language writer/parser."""


class DotParseError(DotError):
    """The DOT parser rejected its input."""


class LayoutError(ReproError):
    """Errors from the graph layout engine."""


class SvgError(ReproError):
    """Errors from the SVG writer/parser."""


class VizError(ReproError):
    """Errors from the visualization toolkit."""


class StethoscopeError(ReproError):
    """Errors from the Stethoscope core (mapping, replay, online mode)."""


class MappingError(StethoscopeError):
    """Trace and dot file could not be reconciled (pc without node, ...)."""
