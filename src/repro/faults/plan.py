"""Deterministic fault plans and the global arming point.

A :class:`FaultPlan` is a seeded description of *what should go wrong*:
per injection site, an ordered list of rules, each firing with a given
probability from a PRNG seeded by ``f"{seed}/{site}"``.  String seeding
makes decisions stable across processes (no ``PYTHONHASHSEED``
dependence), so a failing chaos run replays exactly by re-running with
the same seed and spec.

Sites and their actions:

=====================  =============================================
site                   actions
=====================  =============================================
``udp.emit``           ``drop``, ``dup``, ``reorder``, ``truncate``
``server.loop``        ``latency`` (ms), ``reset``
``scheduler.worker``   ``stall`` (usec), ``crash``
``mpool.worker``       ``crash``, ``stall`` (ms)
``mpool.ship``         ``truncate``, ``latency`` (ms)
``persist.wal``        ``torn-write``, ``fsync-loss``, ``latency`` (ms)
``persist.checkpoint`` ``partial-manifest``, ``crash-before-rename``
``persist.recover``    ``corrupt-record``
``repl.stream``        ``drop``, ``latency`` (ms), ``partition`` (ms)
``repl.promote``       ``crash``
=====================  =============================================

Plans are *armed* globally through the module-level :data:`ACTIVE`
holder.  Hot paths check ``ACTIVE.plan is None`` — one attribute load
and an identity test — so the disarmed harness costs essentially
nothing (benchmarked in E8).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FaultSpecError
from repro.metrics.families import FAULT_INJECTIONS

#: Every valid injection site and the actions it understands.
SITES: Dict[str, Tuple[str, ...]] = {
    "udp.emit": ("drop", "dup", "reorder", "truncate"),
    "server.loop": ("latency", "reset"),
    "scheduler.worker": ("stall", "crash"),
    "mpool.worker": ("crash", "stall"),
    "mpool.ship": ("truncate", "latency"),
    "persist.wal": ("torn-write", "fsync-loss", "latency"),
    "persist.checkpoint": ("partial-manifest", "crash-before-rename"),
    "persist.recover": ("corrupt-record",),
    "repl.stream": ("drop", "latency", "partition"),
    "repl.promote": ("crash",),
}


@dataclass(frozen=True)
class FaultDecision:
    """One fired fault: which site, which action, with which value."""

    site: str
    action: str
    value: Optional[float] = None


@dataclass
class FaultRule:
    """One clause of a plan: fire ``action`` with ``probability``.

    ``value`` is action-specific (latency in ms, stall in usec,
    truncate in bytes); ``limit`` caps the total number of fires.
    """

    action: str
    probability: float = 1.0
    value: Optional[float] = None
    limit: Optional[int] = None
    fires: int = 0

    def exhausted(self) -> bool:
        return self.limit is not None and self.fires >= self.limit


class FaultPlan:
    """A seeded, replayable set of fault rules keyed by injection site.

    Every decision draws from a per-site ``random.Random`` seeded with
    ``f"{seed}/{site}"``; given the same seed, spec, and sequence of
    :meth:`decide` calls per site, the same decisions fire in the same
    order.  Fired decisions are appended to :attr:`journal` so tests can
    assert byte-identical replays.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rules: Dict[str, List[FaultRule]] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._lock = threading.Lock()
        #: (site, action, detail) for every decision that fired.
        self.journal: List[Tuple[str, str, str]] = []

    # -- construction ---------------------------------------------------

    def on(self, site: str, action: str, probability: float = 1.0,
           value: Optional[float] = None,
           limit: Optional[int] = None) -> "FaultPlan":
        """Add a rule; returns ``self`` for chaining."""
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; known sites: "
                f"{', '.join(sorted(SITES))}")
        if action not in SITES[site]:
            raise FaultSpecError(
                f"site {site!r} has no action {action!r}; valid: "
                f"{', '.join(SITES[site])}")
        if not (0.0 <= probability <= 1.0):
            raise FaultSpecError(
                f"probability must be in [0, 1], got {probability!r}")
        if limit is not None and limit < 0:
            raise FaultSpecError(f"limit must be >= 0, got {limit!r}")
        self._rules.setdefault(site, []).append(
            FaultRule(action=action, probability=probability,
                      value=value, limit=limit))
        if site not in self._rngs:
            self._rngs[site] = random.Random(f"{self.seed}/{site}")
        return self

    @classmethod
    def from_config(cls, config: Dict) -> "FaultPlan":
        """Build a plan from a config dict.

        Shape: ``{"seed": 7, "sites": {"udp.emit": [{"action": "drop",
        "p": 0.1}, ...], ...}}``.  ``p`` defaults to 1.0; ``value`` and
        ``limit`` are optional per rule.
        """
        if not isinstance(config, dict):
            raise FaultSpecError("fault config must be a dict")
        unknown = set(config) - {"seed", "sites"}
        if unknown:
            raise FaultSpecError(
                f"unknown fault config keys: {', '.join(sorted(unknown))}")
        try:
            seed = int(config.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultSpecError(
                f"seed must be an integer, got {config.get('seed')!r}")
        plan = cls(seed=seed)
        sites = config.get("sites", {})
        if not isinstance(sites, dict):
            raise FaultSpecError("'sites' must be a dict of site -> rules")
        for site, rules in sites.items():
            if not isinstance(rules, (list, tuple)):
                raise FaultSpecError(
                    f"rules for site {site!r} must be a list")
            for rule in rules:
                if not isinstance(rule, dict) or "action" not in rule:
                    raise FaultSpecError(
                        f"each rule for {site!r} needs an 'action' key")
                plan.on(site, rule["action"],
                        probability=float(rule.get("p", 1.0)),
                        value=rule.get("value"),
                        limit=rule.get("limit"))
        return plan

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI spec string into a plan.

        Grammar: ``clause(";"clause)*`` where each clause is
        ``site ":" action ["=" value] ["@" probability] ["#" limit]``,
        e.g. ``udp.emit:drop@0.1;server.loop:latency=25@0.3`` or
        ``scheduler.worker:crash#1``.
        """
        plan = cls(seed=seed)
        if not isinstance(spec, str) or not spec.strip():
            raise FaultSpecError("empty fault spec")
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if ":" not in clause:
                raise FaultSpecError(
                    f"bad fault clause {clause!r}: expected site:action")
            site, rest = clause.split(":", 1)
            probability, limit, value = 1.0, None, None
            if "#" in rest:
                rest, raw = rest.rsplit("#", 1)
                try:
                    limit = int(raw)
                except ValueError:
                    raise FaultSpecError(
                        f"bad limit {raw!r} in clause {clause!r}")
            if "@" in rest:
                rest, raw = rest.rsplit("@", 1)
                try:
                    probability = float(raw)
                except ValueError:
                    raise FaultSpecError(
                        f"bad probability {raw!r} in clause {clause!r}")
            if "=" in rest:
                rest, raw = rest.split("=", 1)
                try:
                    value = float(raw)
                except ValueError:
                    raise FaultSpecError(
                        f"bad value {raw!r} in clause {clause!r}")
            plan.on(site.strip(), rest.strip(), probability=probability,
                    value=value, limit=limit)
        if not plan._rules:
            raise FaultSpecError(f"fault spec {spec!r} has no clauses")
        return plan

    # -- decisions ------------------------------------------------------

    def decide(self, site: str, detail: str = "") -> Optional[FaultDecision]:
        """Roll the site's PRNG against its rules; return what fired.

        Rules are consulted in declaration order; the first that fires
        wins.  Exhausted (limit-reached) rules still consume a PRNG
        draw so replays stay aligned.  Returns ``None`` when nothing
        fires (including for sites the plan has no rules for — but then
        no PRNG draw happens, keeping unrelated sites independent).
        """
        rules = self._rules.get(site)
        if not rules:
            return None
        with self._lock:
            rng = self._rngs[site]
            for rule in rules:
                roll = rng.random()
                if rule.exhausted():
                    continue
                if roll < rule.probability:
                    rule.fires += 1
                    self.journal.append((site, rule.action, detail))
                    FAULT_INJECTIONS.labels(
                        site=site, action=rule.action).inc()
                    return FaultDecision(site=site, action=rule.action,
                                         value=rule.value)
        return None

    def fires(self, site: str, action: str) -> int:
        """Total fires recorded for (site, action)."""
        with self._lock:
            return sum(rule.fires for rule in self._rules.get(site, ())
                       if rule.action == action)

    # -- introspection --------------------------------------------------

    def signature(self) -> str:
        """A stable one-line description (seed + rules), for reports."""
        clauses = []
        for site in sorted(self._rules):
            for rule in self._rules[site]:
                clause = f"{site}:{rule.action}"
                if rule.value is not None:
                    clause += f"={rule.value:g}"
                if rule.probability != 1.0:
                    clause += f"@{rule.probability:g}"
                if rule.limit is not None:
                    clause += f"#{rule.limit}"
                clauses.append(clause)
        return f"seed={self.seed} {';'.join(clauses)}"

    def describe(self) -> str:
        """Multi-line human-readable summary including fire counts."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for site in sorted(self._rules):
            for rule in self._rules[site]:
                lines.append(
                    f"  {site}:{rule.action} p={rule.probability:g}"
                    + (f" value={rule.value:g}" if rule.value is not None
                       else "")
                    + (f" limit={rule.limit}" if rule.limit is not None
                       else "")
                    + f" fired={rule.fires}")
        return "\n".join(lines)


class _ActiveHolder:
    """Mutable holder for the armed plan.

    Hot paths do ``ACTIVE.plan`` (not ``from ... import plan``) so
    arming is visible everywhere without rebinding module globals.
    """

    __slots__ = ("plan",)

    def __init__(self) -> None:
        self.plan: Optional[FaultPlan] = None


#: The single global arming point; ``ACTIVE.plan is None`` == disarmed.
ACTIVE = _ActiveHolder()


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` globally; returns it for convenience."""
    ACTIVE.plan = plan
    return plan


def disarm() -> None:
    """Disarm whatever plan is active."""
    ACTIVE.plan = None


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager arming ``plan`` for the block, then disarming."""
    previous = ACTIVE.plan
    ACTIVE.plan = plan
    try:
        yield plan
    finally:
        ACTIVE.plan = previous
