"""Deterministic fault injection for chaos-testing the pipeline.

The subsystem has two halves:

* :mod:`repro.faults.plan` — the seeded :class:`FaultPlan` (built from
  a config dict or a CLI spec string), the injection-site table, and
  the global :data:`ACTIVE` arming point that hot paths check.
* :mod:`repro.faults.chaos` — the sweep driver behind ``python -m
  repro chaos``: runs seeds x fault mixes against a live server and
  checks invariants (no hangs, typed errors only, completeness
  accounting, byte-identical replays).

Every decision a plan makes comes from a PRNG seeded by the plan seed
and the site name, so any failing run is replayed exactly by re-running
the same seed and spec.
"""

from __future__ import annotations

from repro.faults.plan import (
    ACTIVE,
    SITES,
    FaultDecision,
    FaultPlan,
    FaultRule,
    arm,
    armed,
    disarm,
)

__all__ = [
    "ACTIVE",
    "SITES",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "arm",
    "armed",
    "disarm",
]
