"""The chaos sweep behind ``python -m repro chaos``.

Runs seeds x fault mixes against a live in-process Mserver and checks
the invariants the fault harness promises:

* **no hangs** — every case finishes inside its wall-clock cap (the
  degraded online monitor and the receiver's ``max_seconds`` cap make
  a lost END marker survivable);
* **typed errors only** — every client call either succeeds (after
  retries) or raises a :class:`~repro.errors.ReproError` subclass;
* **loss accounting** — for UDP-only mixes, the monitor's distinct
  event count equals exactly what the armed emitter put on the wire
  (sent events minus duplicate and truncate fires);
* **replayability** — re-running a case with the same seed and mix
  produces the identical fault journal (same decisions, same order).

Keep ``scale`` small: the sweep runs dozens of full query executions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.faults.plan import FaultPlan, armed

#: The named fault mixes the acceptance sweep runs (spec-string form).
#: Stall values are huge because the threaded scheduler sleeps
#: ``value * realtime_scale(1e-4) / 1e6`` seconds — 4e8 is 0.04s real.
MIXES: Dict[str, str] = {
    "drop10": "udp.emit:drop@0.10",
    "reorder": "udp.emit:reorder@0.25",
    "dup": "udp.emit:dup@0.20",
    "reset": "server.loop:reset@0.08#2;server.loop:latency=10@0.25",
    "worker-stall": ("scheduler.worker:stall=400@0.20;"
                     "scheduler.worker:crash@0.03#1"),
    "overload": "scheduler.worker:stall=400000000@0.7#16",
    "slow-query": "scheduler.worker:stall=1200000000@0.8#12",
    "worker-chaos": ("mpool.worker:crash@0.25#1;mpool.worker:stall=40@0.3;"
                     "mpool.ship:latency=5@0.3;mpool.ship:truncate@0.15#1"),
    # persist.recover:corrupt-record is deliberately absent: it models
    # media corruption of already-acknowledged records, which breaks the
    # acked-prefix byte-identity invariant this mix asserts.  It gets
    # its own prefix-shaped test in tests/test_durability.py.
    "durability-chaos": ("persist.wal:torn-write@0.06#1;"
                         "persist.wal:fsync-loss@0.06#1;"
                         "persist.wal:latency=1@0.2;"
                         "persist.checkpoint:partial-manifest@0.3#1;"
                         "persist.checkpoint:crash-before-rename@0.3#1"),
    "replication-chaos": ("repl.stream:drop@0.10;"
                          "repl.stream:latency=5@0.20;"
                          "repl.stream:partition=150@0.05#1;"
                          "repl.promote:crash@0.5#1"),
}

#: Mixes whose faults touch only the UDP stream; for these the exact
#: sent-vs-received accounting invariant holds (resets re-run queries
#: and crashes truncate them, which makes counting ambiguous).
UDP_ONLY_MIXES = ("drop10", "reorder", "dup")

#: Mixes whose fault journals are legitimately nondeterministic:
#: ``overload`` runs concurrent clients racing for the plan's RNG,
#: ``slow-query`` truncates execution at a wall-clock deadline, and
#: ``replication-chaos`` has a background puller thread whose sync
#: cadence (how many pulls land before the kill) is wall-clock-paced —
#: so the replay-journal determinism check does not apply to them.
REPLAY_EXEMPT = ("overload", "slow-query", "replication-chaos")


@dataclass
class CaseResult:
    """One (seed, mix) chaos case and how it went."""

    seed: int
    mix: str
    ok: bool
    wall_s: float
    outcome: str                  # "rows" | "typed-error"
    error: str = ""               # repr of the typed error, if any
    completeness: float = 1.0
    ended: bool = True
    fault_fires: int = 0
    journal: List[Tuple[str, str, str]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)


@dataclass
class ChaosReport:
    """Everything one sweep produced."""

    cases: List[CaseResult] = field(default_factory=list)
    replay_checked: int = 0
    replay_mismatches: int = 0

    @property
    def ok(self) -> bool:
        return (all(case.ok for case in self.cases)
                and self.replay_mismatches == 0)

    def render(self) -> str:
        """Human-readable pass/fail report."""
        lines = ["chaos sweep: "
                 f"{len(self.cases)} cases "
                 f"({len({c.seed for c in self.cases})} seeds x "
                 f"{len({c.mix for c in self.cases})} mixes)"]
        by_mix: Dict[str, List[CaseResult]] = {}
        for case in self.cases:
            by_mix.setdefault(case.mix, []).append(case)
        for mix in sorted(by_mix):
            batch = by_mix[mix]
            passed = sum(1 for c in batch if c.ok)
            fires = sum(c.fault_fires for c in batch)
            completeness = min(c.completeness for c in batch)
            typed = sum(1 for c in batch if c.outcome == "typed-error")
            lines.append(
                f"  {mix:<14} {passed}/{len(batch)} ok, "
                f"{fires} faults fired, {typed} typed errors, "
                f"min completeness {completeness * 100:.1f}%")
        for case in self.cases:
            if not case.ok:
                lines.append(f"  FAIL seed={case.seed} mix={case.mix}: "
                             + "; ".join(case.violations))
                lines.append(f"       replay with: python -m repro chaos "
                             f"--seed {case.seed} --mix {case.mix}")
        if self.replay_checked:
            verdict = ("identical" if self.replay_mismatches == 0
                       else f"{self.replay_mismatches} MISMATCHED")
            lines.append(f"  replay check: {self.replay_checked} cases "
                         f"re-run, journals {verdict}")
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_case(server, seed: int, mix: str, spec: Optional[str] = None,
             workdir: str = ".", wall_cap_s: float = 20.0) -> CaseResult:
    """Run one chaos case against a started ``Mserver``.

    Arms a fresh plan from ``spec`` (default: ``MIXES[mix]``), monitors
    one profiled SELECT through the degraded-capable online session,
    and checks the per-case invariants.  Always disarms on exit.
    """
    from repro.core.online import OnlineSession
    from repro.core.textual import TextualStethoscope
    from repro.metrics.families import UDP_DATAGRAMS_SENT
    from repro.server.client import MClient

    spec = MIXES[mix] if spec is None else spec
    if mix == "overload":
        return _run_overload_case(server, seed, spec, wall_cap_s)
    if mix == "slow-query":
        return _run_slow_query_case(server, seed, spec, wall_cap_s)
    if mix == "worker-chaos":
        return _run_worker_chaos_case(server, seed, spec, wall_cap_s)
    if mix == "durability-chaos":
        return _run_durability_case(seed, spec, wall_cap_s)
    if mix == "replication-chaos":
        return _run_replication_case(seed, spec, wall_cap_s)
    plan = FaultPlan.from_spec(spec, seed=seed)
    sql = "select count(*) from lineitem where l_quantity > 10"
    sent_events = UDP_DATAGRAMS_SENT.labels(kind="event")
    began = time.monotonic()
    violations: List[str] = []
    outcome, error = "rows", ""
    with armed(plan), TextualStethoscope() as textual:
        connection = textual.connect(f"chaos-{mix}-{seed}")
        sent_before = sent_events.value()

        def run_query():
            client = MClient(port=server.port, timeout=5.0, retries=3,
                             backoff_base_s=0.01, backoff_max_s=0.1,
                             deadline_s=10.0, retry_seed=seed)
            try:
                client.set_profiler(port=connection.port)
                return client.query(sql).rows
            finally:
                client.close()

        session = OnlineSession(connection, _Typed(run_query),
                                workdir=workdir)
        result = session.run(timeout_s=wall_cap_s, settle_s=0.3)
        outcome, payload = result.query_result
        if outcome == "typed-error":
            error = repr(payload)
        elif outcome != "rows":
            violations.append(f"untyped failure: {payload!r}")
        # let in-flight datagrams (e.g. a reordered tail) land before
        # auditing the stream, then recount from the full connection
        for _ in range(5):
            connection.drain(timeout=0.05)
        from repro.core.online import analyze_stream
        _clean, health = analyze_stream(connection.events)
        sent_delta = sent_events.value() - sent_before
    wall_s = time.monotonic() - began
    if wall_s >= wall_cap_s:
        violations.append(f"case ran {wall_s:.1f}s >= cap {wall_cap_s}s")
    if mix in UDP_ONLY_MIXES and outcome == "rows":
        # exact accounting: what went on the wire must be what we saw.
        # The journal's detail field records the line kind, so fires on
        # dot/end lines do not pollute the event arithmetic.
        dup = sum(1 for site, action, detail in plan.journal
                  if action == "dup" and detail == "event")
        truncated = sum(1 for site, action, detail in plan.journal
                        if action == "truncate" and detail == "event")
        expected = int(sent_delta) - dup - truncated
        if health.distinct != expected:
            violations.append(
                f"accounting: {health.distinct} distinct events vs "
                f"{expected} expected ({int(sent_delta)} sent - "
                f"{dup} dup - {truncated} truncated)")
    return CaseResult(
        seed=seed, mix=mix, ok=not violations, wall_s=wall_s,
        outcome=outcome, error=error,
        completeness=health.completeness, ended=health.ended,
        fault_fires=len(plan.journal), journal=list(plan.journal),
        violations=violations,
    )


class _Typed:
    """Wraps run_query so typed errors become data, not crashes."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def __call__(self):
        try:
            return ("rows", self._fn())
        except ReproError as exc:
            return ("typed-error", exc)


def _check_responsive(server, violations: List[str]) -> None:
    """After the storm: the server must still answer a trivial call."""
    from repro.server.client import MClient

    try:
        client = MClient(port=server.port, timeout=5.0, retries=1,
                         deadline_s=5.0, retry_seed=0)
        try:
            if not client.ping():
                violations.append("server unresponsive after case")
        finally:
            client.close()
    except ReproError as exc:
        violations.append(f"server unresponsive after case: {exc!r}")


def _run_overload_case(server, seed: int, spec: str,
                       wall_cap_s: float) -> CaseResult:
    """The ``overload`` mix: more clients than the server will admit.

    Squeezes admission down to one slot and a one-deep queue, then
    fires four concurrent clients at slow (stalled) queries.  The
    invariants: every client ends with rows or a typed error (the
    overload-aware retry means some sheds recover), at least one query
    succeeds, the shed counter advanced, and the server answers a
    trivial call afterwards.
    """
    from repro.metrics.families import SERVER_QUERIES_SHED
    from repro.server.client import MClient

    plan = FaultPlan.from_spec(spec, seed=seed)
    sql = "select count(*) from lineitem where l_quantity > 10"
    shed_counters = [SERVER_QUERIES_SHED.labels(reason=r)
                     for r in ("queue-full", "queue-wait", "stopping")]
    shed_before = sum(c.value() for c in shed_counters)
    clients = 4
    outcomes: List[Optional[Tuple[str, object]]] = [None] * clients
    barrier = threading.Barrier(clients)
    violations: List[str] = []

    def attack(i: int) -> None:
        try:
            client = MClient(port=server.port, timeout=5.0, retries=2,
                             backoff_base_s=0.05, backoff_max_s=0.2,
                             deadline_s=wall_cap_s / 2,
                             retry_seed=seed * 10 + i)
            try:
                client.set_scheduler("threaded")
                barrier.wait(timeout=5.0)
                outcomes[i] = ("rows", client.query(sql).rows)
            finally:
                client.close()
        except ReproError as exc:
            outcomes[i] = ("typed-error", exc)
        except Exception as exc:  # untyped → invariant violation
            outcomes[i] = ("untyped", exc)

    began = time.monotonic()
    admission = server.admission
    restore = dict(max_concurrent=admission.max_concurrent,
                   max_queue=admission.max_queue,
                   queue_wait_s=admission.queue_wait_s)
    admission.configure(max_concurrent=1, max_queue=1, queue_wait_s=0.25)
    try:
        with armed(plan):
            threads = [threading.Thread(target=attack, args=(i,))
                       for i in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=wall_cap_s)
                if thread.is_alive():
                    violations.append("client thread hung past the cap")
    finally:
        admission.configure(**restore)
    wall_s = time.monotonic() - began
    if wall_s >= wall_cap_s:
        violations.append(f"case ran {wall_s:.1f}s >= cap {wall_cap_s}s")
    successes = sum(1 for o in outcomes if o and o[0] == "rows")
    for i, o in enumerate(outcomes):
        if o is None:
            violations.append(f"client {i} produced no outcome")
        elif o[0] == "untyped":
            violations.append(f"client {i} untyped failure: {o[1]!r}")
    if successes == 0:
        violations.append("no client succeeded under overload")
    shed_delta = sum(c.value() for c in shed_counters) - shed_before
    if shed_delta < 1:
        violations.append("admission never shed despite 4x overload")
    _check_responsive(server, violations)
    first_error = next((repr(o[1]) for o in outcomes
                        if o and o[0] != "rows"), "")
    return CaseResult(
        seed=seed, mix="overload", ok=not violations, wall_s=wall_s,
        outcome="rows" if successes else "typed-error", error=first_error,
        fault_fires=len(plan.journal), journal=list(plan.journal),
        violations=violations,
    )


def _run_slow_query_case(server, seed: int, spec: str,
                         wall_cap_s: float) -> CaseResult:
    """The ``slow-query`` mix: a stalled plan against a tight deadline.

    Heavy worker stalls push one threaded query far past its 0.25s
    server-side deadline; the watchdog (or the inline check) must
    cancel it with a typed :class:`~repro.errors.QueryDeadlineError`
    carrying the query id, the deadline counter must advance, and the
    server must stay responsive.
    """
    from repro.errors import QueryDeadlineError
    from repro.metrics.families import SERVER_QUERY_DEADLINE_EXCEEDED
    from repro.server.client import MClient

    plan = FaultPlan.from_spec(spec, seed=seed)
    sql = "select count(*) from lineitem where l_quantity > 10"
    exceeded_before = SERVER_QUERY_DEADLINE_EXCEEDED.value()
    violations: List[str] = []
    outcome, error = "rows", ""
    began = time.monotonic()
    with armed(plan):
        try:
            client = MClient(port=server.port, timeout=5.0, retries=0,
                             deadline_s=wall_cap_s / 2, retry_seed=seed)
            try:
                client.set_scheduler("threaded")
                client.query(sql, server_deadline_s=0.25)
                violations.append(
                    "stalled query finished before its 0.25s deadline")
            finally:
                client.close()
        except QueryDeadlineError as exc:
            outcome, error = "typed-error", repr(exc)
            if not exc.query_id:
                violations.append("deadline error carried no query_id")
        except ReproError as exc:
            outcome, error = "typed-error", repr(exc)
            violations.append(f"expected QueryDeadlineError, got {exc!r}")
    wall_s = time.monotonic() - began
    if wall_s >= wall_cap_s:
        violations.append(f"case ran {wall_s:.1f}s >= cap {wall_cap_s}s")
    if SERVER_QUERY_DEADLINE_EXCEEDED.value() <= exceeded_before:
        violations.append("deadline-exceeded counter did not advance")
    _check_responsive(server, violations)
    return CaseResult(
        seed=seed, mix="slow-query", ok=not violations, wall_s=wall_s,
        outcome=outcome, error=error,
        fault_fires=len(plan.journal), journal=list(plan.journal),
        violations=violations,
    )


def _run_worker_chaos_case(server, seed: int, spec: str,
                           wall_cap_s: float) -> CaseResult:
    """The ``worker-chaos`` mix: faults inside the partition pool.

    A crash fault SIGKILLs a real worker process mid-dispatch; stalls
    and ship latency only slow things down; a ship truncate corrupts a
    partition payload.  The invariants: the query ends in rows or a
    typed pool error (:class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.PartitionShipError` — never a hang, never an
    untyped crash), and afterwards the pool has re-forked its workers
    and answers the *next* query with correct rows.
    """
    from repro.errors import PartitionShipError, WorkerCrashError
    from repro.server.client import MClient

    plan = FaultPlan.from_spec(spec, seed=seed)
    sql = "select count(*) from lineitem where l_quantity > 10"
    violations: List[str] = []
    outcome, error = "rows", ""
    expected_rows = None
    began = time.monotonic()
    with armed(plan):
        try:
            client = MClient(port=server.port, timeout=5.0, retries=0,
                             deadline_s=wall_cap_s / 2, retry_seed=seed)
            try:
                expected_rows = client.query(sql).rows
                if not expected_rows:
                    violations.append("query returned no rows")
            finally:
                client.close()
        except (WorkerCrashError, PartitionShipError) as exc:
            outcome, error = "typed-error", repr(exc)
        except ReproError as exc:
            outcome, error = "typed-error", repr(exc)
            violations.append(f"expected a pool error, got {exc!r}")
    wall_s = time.monotonic() - began
    if wall_s >= wall_cap_s:
        violations.append(f"case ran {wall_s:.1f}s >= cap {wall_cap_s}s")
    # recovery: with faults disarmed, the pool must have healthy workers
    # again and the very next query must succeed with correct rows
    try:
        client = MClient(port=server.port, timeout=5.0, retries=0,
                         deadline_s=wall_cap_s / 2, retry_seed=seed)
        try:
            recovered = client.query(sql).rows
        finally:
            client.close()
        if expected_rows is not None and recovered != expected_rows:
            violations.append(
                f"post-recovery rows {recovered!r} != {expected_rows!r}")
        if not recovered:
            violations.append("post-recovery query returned no rows")
    except ReproError as exc:
        violations.append(f"pool did not recover: {exc!r}")
    pool = server.database.pool
    if pool is not None and pool.alive < pool.workers:
        violations.append(
            f"pool has {pool.alive}/{pool.workers} live workers "
            "after recovery")
    _check_responsive(server, violations)
    return CaseResult(
        seed=seed, mix="worker-chaos", ok=not violations, wall_s=wall_s,
        outcome=outcome, error=error,
        fault_fires=len(plan.journal), journal=list(plan.journal),
        violations=violations,
    )


def _run_durability_case(seed: int, spec: str,
                         wall_cap_s: float) -> CaseResult:
    """The ``durability-chaos`` mix: crash-loop a durable server.

    Opens a private WAL-backed database in a scratch directory and runs
    a seeded DDL+INSERT workload against it through a real Mserver,
    crash-looping the process state three times (SIGKILL-shaped
    truncation to the durable watermark, a crash that keeps a torn
    tail, or a clean close — the seed picks).  A shadow plain catalog
    applies exactly the statements the client saw acknowledged.  The
    invariants: every statement either succeeds or raises a typed
    error; after every recovery the catalog is **byte-identical** to
    the shadow (no acked row lost, no unacked row half-applied); and a
    recovery after a torn-write fault reports the torn tail it dropped.
    """
    import random
    import shutil
    import tempfile

    from repro.server.client import MClient
    from repro.server.database import Database
    from repro.server.mserver import Mserver
    from repro.storage.durable import catalog_canonical_bytes

    plan = FaultPlan.from_spec(spec, seed=seed)
    rng = random.Random(seed * 7919 + 11)
    violations: List[str] = []
    outcome, error = "rows", ""
    sent = acked = 0
    cycles = 3
    wal_dir = tempfile.mkdtemp(prefix=f"chaos-durable-{seed}-")
    shadow = Database()
    began = time.monotonic()
    try:
        with armed(plan):
            for cycle in range(cycles):
                database = Database(wal_dir=wal_dir, commit_window_ms=0.0,
                                    checkpoint_interval=4)
                if cycle and database.recovery is not None:
                    recovered = catalog_canonical_bytes(database.catalog)
                    expected = catalog_canonical_bytes(shadow.catalog)
                    if recovered != expected:
                        violations.append(
                            f"cycle {cycle}: recovered catalog diverges "
                            f"from the acknowledged prefix "
                            f"({database.recovery.describe()})")
                statements = [
                    f"create table chaos_d{cycle} "
                    f"(id integer, tag varchar(16), score double)"
                ]
                for _ in range(7):
                    table = rng.randrange(cycle + 1)
                    statements.append(
                        f"insert into chaos_d{table} values "
                        f"({rng.randrange(1000)}, "
                        f"'t{rng.randrange(100)}', "
                        f"{rng.randrange(1000) / 8.0})")
                with Mserver(database) as server:
                    client = MClient(port=server.port, timeout=5.0,
                                     retries=0, deadline_s=wall_cap_s / 2,
                                     retry_seed=seed)
                    try:
                        for sql in statements:
                            sent += 1
                            try:
                                client.query(sql)
                            except ReproError as exc:
                                if not error:
                                    outcome = "typed-error"
                                    error = repr(exc)
                            except Exception as exc:
                                violations.append(
                                    f"untyped failure from {sql!r}: "
                                    f"{exc!r}")
                            else:
                                acked += 1
                                shadow.execute(sql)
                    finally:
                        client.close()
                    # crash while the server still owns the database:
                    # Mserver.stop() closes it cleanly, so the abrupt
                    # truncation has to land first.  "kill" keeps only
                    # the durable prefix, "kill-torn" also keeps any
                    # torn half-record past it, "clean" trusts close().
                    style = rng.choice(("kill", "kill-torn", "clean"))
                    if style == "kill":
                        database.durability.simulate_crash()
                    elif style == "kill-torn":
                        database.durability.simulate_crash(
                            database.durability.wal.written_bytes)
            # final recovery with faults still armed (the spec has no
            # persist.recover rules, so recovery itself is clean)
            database = Database(wal_dir=wal_dir)
            try:
                recovered = catalog_canonical_bytes(database.catalog)
                expected = catalog_canonical_bytes(shadow.catalog)
                if recovered != expected:
                    violations.append(
                        "final recovered catalog diverges from the "
                        "acknowledged prefix "
                        f"({database.recovery.describe()})")
            finally:
                database.close()
    finally:
        shadow.close()
        shutil.rmtree(wal_dir, ignore_errors=True)
    wall_s = time.monotonic() - began
    if wall_s >= wall_cap_s:
        violations.append(f"case ran {wall_s:.1f}s >= cap {wall_cap_s}s")
    if acked == 0:
        violations.append("no statement was ever acknowledged")
    return CaseResult(
        seed=seed, mix="durability-chaos", ok=not violations, wall_s=wall_s,
        outcome=outcome, error=error,
        completeness=acked / sent if sent else 0.0,
        fault_fires=len(plan.journal), journal=list(plan.journal),
        violations=violations,
    )


def _run_replication_case(seed: int, spec: str,
                          wall_cap_s: float) -> CaseResult:
    """The ``replication-chaos`` mix: kill the primary mid-write-load.

    Builds a private two-node topology (primary + replica, each a real
    Mserver over its own WAL directory), streams a seeded write load
    through the primary while the replica pulls under armed
    ``repl.stream`` faults (drops, latency, a partition window), then
    SIGKILL-shapes the primary mid-load (durable-watermark truncation,
    exactly like the durability mix) and promotes the replica — with
    ``repl.promote:crash`` able to fire on the first attempt.

    Invariants: the promoted replica's catalog is **byte-identical**
    (``catalog_canonical_bytes``) to a *clean acked prefix* of the
    statements the primary acknowledged — never a torn or interleaved
    state; the promoted node serves reads and accepts writes; and the
    resurrected old primary is fenced on epoch — its stale stream is
    rejected by followers and it demotes itself on first contact with
    the new epoch, so no seed ever has two writable nodes.
    """
    import random
    import shutil
    import tempfile

    from repro.errors import ReadOnlyReplicaError, ReplicationFencedError
    from repro.replication import ReplicationManager
    from repro.server.client import MClient
    from repro.server.database import Database
    from repro.server.mserver import Mserver
    from repro.storage.durable import catalog_canonical_bytes

    plan = FaultPlan.from_spec(spec, seed=seed)
    rng = random.Random(seed * 6521 + 5)
    violations: List[str] = []
    outcome, error = "rows", ""
    acked: List[str] = []
    primary_dir = tempfile.mkdtemp(prefix=f"chaos-repl-p-{seed}-")
    replica_dir = tempfile.mkdtemp(prefix=f"chaos-repl-r-{seed}-")
    began = time.monotonic()
    primary_server = replica_server = revived_server = None
    try:
        with armed(plan):
            primary_db = Database(wal_dir=primary_dir,
                                  commit_window_ms=0.0,
                                  checkpoint_interval=4)
            primary_server = Mserver(primary_db).start()
            primary_addr = f"127.0.0.1:{primary_server.port}"
            primary_mgr = ReplicationManager(primary_server,
                                             addr=primary_addr)
            primary_server.replication = primary_mgr.start()

            client = MClient(port=primary_server.port, timeout=5.0,
                             retries=0, deadline_s=wall_cap_s / 2,
                             retry_seed=seed)
            try:
                statements = [
                    "create table chaos_r (id integer, tag varchar(16),"
                    " score double)"
                ]
                for _ in range(5):
                    statements.append(
                        f"insert into chaos_r values "
                        f"({rng.randrange(1000)}, 't{rng.randrange(100)}',"
                        f" {rng.randrange(1000) / 8.0})")
                for sql in statements:
                    client.query(sql)
                    acked.append(sql)

                # the replica joins after the primary has checkpointed,
                # so most seeds exercise the bootstrap path too
                replica_db = Database(wal_dir=replica_dir,
                                      commit_window_ms=0.0)
                replica_server = Mserver(replica_db).start()
                replica_addr = f"127.0.0.1:{replica_server.port}"
                replica_mgr = ReplicationManager(
                    replica_server, addr=replica_addr,
                    primary=primary_addr,
                    peers=(primary_addr, replica_addr),
                    poll_interval_s=0.01, auto_failover=False)
                replica_server.replication = replica_mgr.start()

                # keep writing while the replica replicates under fire
                for _ in range(10):
                    sql = (f"insert into chaos_r values "
                           f"({rng.randrange(1000)}, "
                           f"'t{rng.randrange(100)}', "
                           f"{rng.randrange(1000) / 8.0})")
                    client.query(sql)
                    acked.append(sql)
                    time.sleep(0.002)

                # mid-write-load the case demands: give the puller a
                # bounded moment to have applied *something*, then kill
                # — deliberately NOT waiting for it to catch up fully
                settle = time.monotonic() + min(2.0, wall_cap_s / 4)
                while time.monotonic() < settle and \
                        replica_db.durability.wal.durable_lsn == 0:
                    time.sleep(0.01)
            finally:
                client.close()

            old_epoch = primary_db.durability.epoch
            # SIGKILL-shaped death: truncate to the durable watermark
            # while the server still owns the database, then tear down
            primary_db.durability.simulate_crash()
            primary_server.stop()
            primary_server = None

            # promote the replica; repl.promote:crash may fire once
            promoted = None
            for _attempt in range(3):
                try:
                    with MClient(port=replica_server.port, timeout=5.0,
                                 retries=0, retry_seed=seed) as pclient:
                        promoted = pclient.promote(
                            deadline_s=wall_cap_s / 2)
                    break
                except ReproError as exc:
                    outcome, error = "typed-error", repr(exc)
            if promoted is None or not promoted.get("promoted"):
                violations.append(
                    f"replica never promoted: {error or promoted!r}")
            elif int(promoted.get("epoch", 0)) <= old_epoch:
                violations.append(
                    f"promotion did not bump the epoch "
                    f"({promoted.get('epoch')} <= {old_epoch})")

            # the promoted node's state must be byte-identical to a
            # clean prefix of what the primary acknowledged
            shadow = Database()
            try:
                prefixes = [catalog_canonical_bytes(shadow.catalog)]
                for sql in acked:
                    shadow.execute(sql)
                    prefixes.append(
                        catalog_canonical_bytes(shadow.catalog))
                state = catalog_canonical_bytes(replica_db.catalog)
                if state not in prefixes:
                    violations.append(
                        "promoted replica state is not a clean acked "
                        "prefix")
                elif prefixes.index(state) == 0 and len(acked) > 5:
                    violations.append(
                        "promoted replica replicated nothing despite a "
                        "settled puller")
            finally:
                shadow.close()

            # the promoted node serves reads and accepts writes
            try:
                with MClient(port=replica_server.port, timeout=5.0,
                             retries=0, retry_seed=seed) as rclient:
                    rclient.query("select count(*) from chaos_r")
                    rclient.query("insert into chaos_r values "
                                  "(1, 'post', 1.0)")
            except ReproError as exc:
                violations.append(
                    f"promoted replica not serving: {exc!r}")

            # fencing: resurrect the old primary from its directory —
            # still believing it is the primary at the old epoch
            revived_db = Database(wal_dir=primary_dir,
                                  commit_window_ms=0.0)
            revived_server = Mserver(revived_db).start()
            # the fencing probes call handle_sync directly — arm an
            # empty plan so injected stream faults don't fire on the
            # assertion itself (they already had their shot above)
            with armed(FaultPlan(seed=seed)):
                revived_mgr = ReplicationManager(
                    revived_server,
                    addr=f"127.0.0.1:{revived_server.port}")
                revived_server.replication = revived_mgr.start()
                new_epoch = replica_db.durability.epoch
                # (a) a follower rejects the deposed primary's stream
                stale = revived_mgr.handle_sync(
                    {"from_lsn": 0, "epoch": 0, "follower": "probe"})
                try:
                    replica_mgr._check_epoch(stale)
                    violations.append(
                        "follower accepted a stale-epoch stream")
                except ReplicationFencedError:
                    pass
                # (b) first contact with the new epoch deposes it
                try:
                    revived_mgr.handle_sync(
                        {"from_lsn": 0, "epoch": new_epoch,
                         "follower": replica_addr})
                    violations.append(
                        "deposed primary served a higher-epoch peer")
                except ReplicationFencedError:
                    pass
                if revived_mgr.accepts_writes():
                    violations.append(
                        "deposed primary still accepts writes "
                        "(split-brain)")
                else:
                    try:
                        with MClient(port=revived_server.port,
                                     timeout=5.0, retries=0,
                                     retry_seed=seed) as wclient:
                            wclient.query("insert into chaos_r values "
                                          "(2, 'ghost', 2.0)")
                        violations.append(
                            "deposed primary accepted a ghost write")
                    except ReadOnlyReplicaError:
                        pass
            revived_server.stop()
            revived_server = None

            replica_server.stop()
            replica_server = None
    except ReproError as exc:
        outcome, error = "typed-error", repr(exc)
        violations.append(f"typed error escaped the harness: {exc!r}")
    finally:
        for server in (primary_server, replica_server, revived_server):
            if server is not None:
                try:
                    server.stop()
                except Exception:
                    pass
        shutil.rmtree(primary_dir, ignore_errors=True)
        shutil.rmtree(replica_dir, ignore_errors=True)
    wall_s = time.monotonic() - began
    if wall_s >= wall_cap_s:
        violations.append(f"case ran {wall_s:.1f}s >= cap {wall_cap_s}s")
    if not acked:
        violations.append("no statement was ever acknowledged")
    return CaseResult(
        seed=seed, mix="replication-chaos", ok=not violations,
        wall_s=wall_s, outcome=outcome, error=error,
        fault_fires=len(plan.journal), journal=list(plan.journal),
        violations=violations,
    )


def run_sweep(seeds: Sequence[int], mixes: Optional[Sequence[str]] = None,
              scale: float = 0.01, workdir: str = ".",
              wall_cap_s: float = 20.0, replay_sample: int = 2,
              log=None) -> ChaosReport:
    """Run the full sweep on a private in-process server.

    ``seeds`` x ``mixes`` cases, plus a replay pass re-running up to
    ``replay_sample`` cases per mix and comparing fault journals.
    """
    from repro.server.database import Database
    from repro.server.mserver import Mserver
    from repro.tpch import populate

    mixes = list(MIXES) if mixes is None else list(mixes)
    for mix in mixes:
        if mix not in MIXES:
            raise ReproError(f"unknown chaos mix {mix!r}; known: "
                             + ", ".join(MIXES))
    # parallel_workers=2 backs the sweep with a real partition pool, so
    # the mpool.* sites fire against forked worker processes;
    # parallel_min_rows=0 keeps the tiny sweep tables above the floor
    database = Database(workers=2, mitosis_threshold=50,
                        parallel_workers=2, parallel_min_rows=0)
    populate(database.catalog, scale_factor=scale, seed=3)
    report = ChaosReport()
    with Mserver(database) as server:
        for mix in mixes:
            for seed in seeds:
                case = run_case(server, seed, mix, workdir=workdir,
                                wall_cap_s=wall_cap_s)
                report.cases.append(case)
                if log is not None:
                    log(f"seed={seed} mix={mix}: "
                        + ("ok" if case.ok else "FAIL")
                        + f" ({case.outcome}, "
                        f"{case.completeness * 100:.0f}% complete, "
                        f"{case.fault_fires} faults)")
            # determinism: re-run a sample and compare journals
            # (skipped for mixes whose journals are racy by design)
            if mix in REPLAY_EXEMPT:
                continue
            for case in [c for c in report.cases
                         if c.mix == mix][:replay_sample]:
                again = run_case(server, case.seed, mix, workdir=workdir,
                                 wall_cap_s=wall_cap_s)
                report.replay_checked += 1
                if again.journal != case.journal:
                    report.replay_mismatches += 1
                    case.violations.append("replay journal mismatch")
                    case.ok = False
    return report
