"""The layout engine: the full Sugiyama pipeline over a
:class:`~repro.dot.graph.Digraph`."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dot.graph import Digraph
from repro.layout.acyclic import acyclic_orientation
from repro.layout.geometry import (
    Layout,
    LayoutEdge,
    LayoutNode,
    Point,
    node_size_for_label,
)
from repro.layout.ordering import (
    count_crossings,
    insert_virtual_nodes,
    minimize_crossings,
)
from repro.layout.position import assign_coordinates
from repro.layout.rank import assign_ranks, layers_from_ranks


class LayeredLayout:
    """Configurable hierarchical layout.

    Args:
        h_gap / v_gap: minimum horizontal / vertical box gaps.
        max_sweeps: barycenter sweep budget for crossing minimisation.
        char_width / line_height: label-to-box-size model parameters.
    """

    def __init__(self, h_gap: float = 30.0, v_gap: float = 40.0,
                 max_sweeps: int = 8, char_width: float = 7.0,
                 line_height: float = 16.0) -> None:
        self.h_gap = h_gap
        self.v_gap = v_gap
        self.max_sweeps = max_sweeps
        self.char_width = char_width
        self.line_height = line_height
        #: crossings in the final drawing (filled by :meth:`layout`).
        self.last_crossings: Optional[int] = None

    def layout(self, graph: Digraph) -> Layout:
        """Lay out ``graph``; every node gets a box, every edge a
        polyline routed through its virtual nodes."""
        node_ids = list(graph.nodes)
        if not node_ids:
            return Layout({}, [], 0.0, 0.0)
        oriented, reversed_indices = acyclic_orientation(graph)
        rank = assign_ranks(node_ids, oriented)
        layers = layers_from_ranks(rank)
        segmented = insert_virtual_nodes(rank, layers, oriented)
        ordered = minimize_crossings(segmented, self.max_sweeps)
        self.last_crossings = count_crossings(ordered, segmented.segments)

        widths: Dict[str, float] = {}
        heights: Dict[str, float] = {}
        for node_id in node_ids:
            width, height = node_size_for_label(
                graph.node(node_id).label, self.char_width, self.line_height
            )
            widths[node_id] = width
            heights[node_id] = height
        for vid in segmented.virtual:
            widths[vid] = 1.0
            heights[vid] = 1.0

        xs, ys = assign_coordinates(
            ordered, widths, heights, segmented.segments,
            self.h_gap, self.v_gap,
        )

        nodes: Dict[str, LayoutNode] = {}
        for node_id in node_ids:
            nodes[node_id] = LayoutNode(
                node_id=node_id, x=xs[node_id], y=ys[node_id],
                width=widths[node_id], height=heights[node_id],
                label=graph.node(node_id).label, rank=rank[node_id],
            )

        edges: List[LayoutEdge] = []
        path_cursor = 0
        for index, edge in enumerate(graph.edges):
            if edge.src == edge.dst:
                # self-loop: a small triangle beside the node
                node = nodes[edge.src]
                edges.append(LayoutEdge(edge.src, edge.dst, [
                    Point(node.right, node.y),
                    Point(node.right + self.h_gap, node.y),
                    Point(node.right, node.y + 4.0),
                ]))
                continue
            chain = segmented.edge_paths[path_cursor]
            path_cursor += 1
            points = [Point(xs[n], ys[n]) for n in chain]
            if index in reversed_indices:
                points.reverse()
            # clip endpoints to the node borders (vertical flow)
            src_node, dst_node = nodes[edge.src], nodes[edge.dst]
            points[0] = Point(points[0].x, src_node.bottom
                              if points[0].y <= points[1].y
                              else src_node.top)
            points[-1] = Point(points[-1].x, dst_node.top
                               if points[-1].y >= points[-2].y
                               else dst_node.bottom)
            edges.append(LayoutEdge(edge.src, edge.dst, points))

        width = max((n.right for n in nodes.values()), default=0.0)
        height = max((n.bottom for n in nodes.values()), default=0.0)
        return Layout(nodes, edges, width, height)


def layout_graph(graph: Digraph, **kwargs) -> Layout:
    """One-shot convenience wrapper over :class:`LayeredLayout`."""
    return LayeredLayout(**kwargs).layout(graph)
