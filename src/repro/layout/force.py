"""Force-directed layout (the GraphViz ``neato`` equivalent).

The hierarchical engine is right for MAL plans (they are DAGs), but
ZGrviewer also displays arbitrary graphs; this Fruchterman–Reingold
implementation (vectorised with numpy) covers cyclic or undirected-ish
inputs where layering makes no sense.  Deterministic: initial positions
come from a seeded generator.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

import numpy as np

from repro.dot.graph import Digraph
from repro.layout.geometry import (
    Layout,
    LayoutEdge,
    LayoutNode,
    Point,
    node_size_for_label,
)


class ForceLayout:
    """Fruchterman–Reingold spring embedding.

    Args:
        iterations: simulation steps.
        area_per_node: target canvas area per node (controls spread).
        seed: RNG seed for the initial placement.
    """

    def __init__(self, iterations: int = 120, area_per_node: float = 40000.0,
                 seed: int = 42) -> None:
        self.iterations = iterations
        self.area_per_node = area_per_node
        self.seed = seed

    def layout(self, graph: Digraph) -> Layout:
        """Embed ``graph``; node boxes sized from labels, straight edges."""
        node_ids = list(graph.nodes)
        count = len(node_ids)
        if count == 0:
            return Layout({}, [], 0.0, 0.0)
        index = {node_id: i for i, node_id in enumerate(node_ids)}
        rng = random.Random(self.seed)
        side = math.sqrt(count * self.area_per_node)
        positions = np.array(
            [[rng.uniform(0, side), rng.uniform(0, side)] for _ in node_ids]
        )
        if count > 1:
            k = math.sqrt(side * side / count)  # ideal spring length
            edges = np.array(
                [
                    (index[e.src], index[e.dst])
                    for e in graph.edges if e.src != e.dst
                ],
                dtype=int,
            ).reshape(-1, 2)
            temperature = side / 10.0
            cooling = temperature / (self.iterations + 1)
            for _step in range(self.iterations):
                delta = positions[:, None, :] - positions[None, :, :]
                distance = np.linalg.norm(delta, axis=2)
                np.fill_diagonal(distance, 1.0)
                distance = np.maximum(distance, 0.01)
                # repulsion: k^2 / d away from every other node
                repulse = (k * k / distance**2)[:, :, None] * delta / \
                    distance[:, :, None]
                displacement = repulse.sum(axis=1)
                # attraction along edges: d^2 / k toward the neighbour
                if len(edges):
                    src, dst = edges[:, 0], edges[:, 1]
                    edge_delta = positions[src] - positions[dst]
                    edge_distance = np.maximum(
                        np.linalg.norm(edge_delta, axis=1, keepdims=True),
                        0.01,
                    )
                    pull = edge_delta * edge_distance / k
                    np.add.at(displacement, src, -pull)
                    np.add.at(displacement, dst, pull)
                length = np.maximum(
                    np.linalg.norm(displacement, axis=1, keepdims=True),
                    0.01,
                )
                positions += displacement / length * np.minimum(
                    length, temperature
                )
                temperature = max(temperature - cooling, 0.01)
        positions -= positions.min(axis=0, keepdims=True)
        nodes: Dict[str, LayoutNode] = {}
        for node_id in node_ids:
            x, y = positions[index[node_id]]
            width, height = node_size_for_label(graph.node(node_id).label)
            nodes[node_id] = LayoutNode(
                node_id=node_id, x=float(x) + width / 2,
                y=float(y) + height / 2, width=width, height=height,
                label=graph.node(node_id).label, rank=0,
            )
        layout_edges = []
        for edge in graph.edges:
            src, dst = nodes[edge.src], nodes[edge.dst]
            layout_edges.append(LayoutEdge(edge.src, edge.dst, [
                Point(src.x, src.y), Point(dst.x, dst.y),
            ]))
        width = max(n.right for n in nodes.values())
        height = max(n.bottom for n in nodes.values())
        return Layout(nodes, layout_edges, width, height)
