"""Crossing minimisation: virtual-node insertion and barycenter sweeps.

Edges spanning more than one rank are broken into unit segments through
*virtual* nodes, then the per-layer orders are refined with alternating
down/up barycenter sweeps until the crossing count stops improving.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple


class SegmentedGraph:
    """The layered graph after virtual-node insertion.

    Attributes:
        layers: node ids per rank (virtual ids start with ``__v``).
        segments: unit-length edges (src, dst) between adjacent ranks.
        edge_paths: for each original edge index, the full node chain
            ``[src, v1, ..., dst]`` its drawing will follow.
        virtual: the set of virtual node ids.
    """

    def __init__(self, layers: List[List[str]],
                 segments: List[Tuple[str, str]],
                 edge_paths: List[List[str]],
                 virtual: Set[str]) -> None:
        self.layers = layers
        self.segments = segments
        self.edge_paths = edge_paths
        self.virtual = virtual


def insert_virtual_nodes(rank: Dict[str, int],
                         layers: List[List[str]],
                         edges: Sequence[Tuple[str, str]]) -> SegmentedGraph:
    """Split long edges into rank-adjacent segments via virtual nodes."""
    layers = [list(layer) for layer in layers]
    segments: List[Tuple[str, str]] = []
    edge_paths: List[List[str]] = []
    virtual: Set[str] = set()
    counter = 0
    for src, dst in edges:
        r_src, r_dst = rank[src], rank[dst]
        if r_dst - r_src <= 1:
            segments.append((src, dst))
            edge_paths.append([src, dst])
            continue
        chain = [src]
        previous = src
        for middle_rank in range(r_src + 1, r_dst):
            vid = f"__v{counter}"
            counter += 1
            virtual.add(vid)
            layers[middle_rank].append(vid)
            segments.append((previous, vid))
            chain.append(vid)
            previous = vid
        segments.append((previous, dst))
        chain.append(dst)
        edge_paths.append(chain)
    return SegmentedGraph(layers, segments, edge_paths, virtual)


def count_crossings(layers: List[List[str]],
                    segments: Sequence[Tuple[str, str]]) -> int:
    """Total number of pairwise edge crossings between adjacent layers."""
    position = {}
    layer_of = {}
    for index, layer in enumerate(layers):
        for pos, node in enumerate(layer):
            position[node] = pos
            layer_of[node] = index
    total = 0
    by_gap: Dict[int, List[Tuple[int, int]]] = {}
    for src, dst in segments:
        gap = layer_of[src]
        by_gap.setdefault(gap, []).append((position[src], position[dst]))
    for pairs in by_gap.values():
        pairs.sort()
        # count inversions in dst sequence (mergesort-free O(n^2) is fine
        # at plan scale; layers rarely exceed a few hundred nodes)
        dsts = [d for _s, d in pairs]
        for i in range(len(dsts)):
            for j in range(i + 1, len(dsts)):
                if pairs[i][0] != pairs[j][0] and dsts[i] > dsts[j]:
                    total += 1
    return total


def minimize_crossings(segmented: SegmentedGraph,
                       max_sweeps: int = 8) -> List[List[str]]:
    """Alternating barycenter sweeps; returns the improved layer orders."""
    layers = [list(layer) for layer in segmented.layers]
    down: Dict[str, List[str]] = {}
    up: Dict[str, List[str]] = {}
    for src, dst in segmented.segments:
        down.setdefault(src, []).append(dst)
        up.setdefault(dst, []).append(src)

    def sweep(direction: int) -> None:
        indices = range(1, len(layers)) if direction > 0 else range(
            len(layers) - 2, -1, -1
        )
        for layer_index in indices:
            neighbours = up if direction > 0 else down
            reference = layers[layer_index - direction]
            ref_pos = {node: pos for pos, node in enumerate(reference)}
            current_pos = {
                node: pos for pos, node in enumerate(layers[layer_index])
            }

            def barycenter(node: str) -> float:
                adjacent = [
                    ref_pos[n] for n in neighbours.get(node, [])
                    if n in ref_pos
                ]
                if not adjacent:
                    # keep nodes without neighbours where they are
                    return float(current_pos[node])
                return sum(adjacent) / len(adjacent)

            layers[layer_index].sort(key=barycenter)

    best = [list(layer) for layer in layers]
    best_crossings = count_crossings(layers, segmented.segments)
    for sweep_index in range(max_sweeps):
        sweep(+1 if sweep_index % 2 == 0 else -1)
        crossings = count_crossings(layers, segmented.segments)
        if crossings < best_crossings:
            best_crossings = crossings
            best = [list(layer) for layer in layers]
        if crossings == 0:
            break
    return best
