"""Hierarchical graph layout (the GraphViz ``dot`` substitute).

The Stethoscope workflow needs node/edge coordinates for its zoomable
canvas: "a dot file gets parsed and an intermediate scalar vector graphics
(svg) representation gets created" (paper §4).  GraphViz is not available
in this environment, so this package implements the classic Sugiyama
pipeline from scratch:

1. cycle removal (:mod:`repro.layout.acyclic`),
2. layer assignment (:mod:`repro.layout.rank`),
3. crossing minimisation with virtual nodes (:mod:`repro.layout.ordering`),
4. coordinate assignment and edge routing (:mod:`repro.layout.position`),

orchestrated by :class:`repro.layout.engine.LayeredLayout`.  Layout
quality differs from GraphViz's, but the output contract is the same:
every node gets a box, every edge a polyline, and the drawing is
hierarchical (dependencies flow top-to-bottom).
"""

from repro.layout.engine import LayeredLayout, layout_graph
from repro.layout.geometry import Layout, LayoutEdge, LayoutNode, Point

__all__ = [
    "LayeredLayout",
    "Layout",
    "LayoutEdge",
    "LayoutNode",
    "Point",
    "layout_graph",
]
