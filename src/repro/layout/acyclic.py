"""Cycle removal: make an arbitrary digraph acyclic by reversing the back
edges found by a depth-first search.

MAL plans are DAGs by construction, but the layout engine also accepts
hand-written dot files, so the pipeline defends itself.  Reversed edges
are remembered so the final drawing can route them in original direction.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.dot.graph import Digraph


def acyclic_orientation(graph: Digraph) -> Tuple[List[Tuple[str, str]], Set[int]]:
    """Compute an acyclic edge orientation.

    Returns:
        (oriented_edges, reversed_indices): one (src, dst) per original
        edge — possibly swapped — plus the indices (into ``graph.edges``)
        of the edges that were reversed.  Self-loops are dropped from the
        oriented list entirely (they do not affect layering).
    """
    state: Dict[str, int] = {}  # 0 = on stack, 1 = finished
    back_edges: Set[int] = set()

    # index edges by (src) for DFS edge identification
    edges_by_src: Dict[str, List[Tuple[int, str]]] = {}
    for index, edge in enumerate(graph.edges):
        edges_by_src.setdefault(edge.src, []).append((index, edge.dst))

    for start in graph.nodes:
        if start in state:
            continue
        stack: List[Tuple[str, int]] = [(start, 0)]
        state[start] = 0
        while stack:
            node, cursor = stack[-1]
            outgoing = edges_by_src.get(node, [])
            if cursor >= len(outgoing):
                state[node] = 1
                stack.pop()
                continue
            stack[-1] = (node, cursor + 1)
            edge_index, target = outgoing[cursor]
            if target == node:
                back_edges.add(edge_index)  # self-loop
                continue
            if target not in state:
                state[target] = 0
                stack.append((target, 0))
            elif state[target] == 0:
                back_edges.add(edge_index)  # back edge: reverse it

    oriented: List[Tuple[str, str]] = []
    reversed_indices: Set[int] = set()
    for index, edge in enumerate(graph.edges):
        if edge.src == edge.dst:
            continue  # self-loop: not layered
        if index in back_edges:
            oriented.append((edge.dst, edge.src))
            reversed_indices.add(index)
        else:
            oriented.append((edge.src, edge.dst))
    return oriented, reversed_indices
