"""Layer (rank) assignment.

Longest-path layering: every node's rank is the length of the longest
path from any source, so all edges point strictly downward.  A pulling
pass then tightens sources toward their nearest successor, avoiding the
classic longest-path artefact of all sources piling into rank 0 far away
from their single consumer.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.errors import LayoutError


def assign_ranks(node_ids: List[str],
                 edges: List[Tuple[str, str]]) -> Dict[str, int]:
    """Rank every node; edges must form a DAG over ``node_ids``.

    Raises:
        LayoutError: if a cycle sneaks through (internal error).
    """
    indegree = {n: 0 for n in node_ids}
    out: Dict[str, List[str]] = {n: [] for n in node_ids}
    ins: Dict[str, List[str]] = {n: [] for n in node_ids}
    for src, dst in edges:
        indegree[dst] += 1
        out[src].append(dst)
        ins[dst].append(src)
    rank = {n: 0 for n in node_ids}
    ready = deque(n for n in node_ids if indegree[n] == 0)
    seen = 0
    while ready:
        node = ready.popleft()
        seen += 1
        for succ in out[node]:
            rank[succ] = max(rank[succ], rank[node] + 1)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if seen != len(node_ids):
        raise LayoutError("rank assignment saw a cycle")
    # tighten: pull nodes without predecessors down to just above their
    # earliest successor (keeps e.g. late-bound columns near their use)
    for node in node_ids:
        if not ins[node] and out[node]:
            earliest = min(rank[s] for s in out[node])
            rank[node] = max(rank[node], earliest - 1)
    return rank


def layers_from_ranks(rank: Dict[str, int]) -> List[List[str]]:
    """Group node ids per rank, 0-based and dense."""
    if not rank:
        return []
    depth = max(rank.values()) + 1
    layers: List[List[str]] = [[] for _ in range(depth)]
    for node, r in rank.items():
        layers[r].append(node)
    return layers
