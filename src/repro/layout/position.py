"""Coordinate assignment: x positions within each layer, y per rank.

Nodes are first packed left-to-right with their real widths, then nudged
toward the mean x of their neighbours for a few iterations (a light
version of the priority method) while never re-introducing overlaps.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def assign_coordinates(
    layers: List[List[str]],
    widths: Dict[str, float],
    heights: Dict[str, float],
    segments: Sequence[Tuple[str, str]],
    h_gap: float = 30.0,
    v_gap: float = 40.0,
    iterations: int = 4,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Compute centre coordinates for every (virtual) node.

    Returns:
        (xs, ys): centre x and y per node id.
    """
    neighbours: Dict[str, List[str]] = {}
    for src, dst in segments:
        neighbours.setdefault(src, []).append(dst)
        neighbours.setdefault(dst, []).append(src)

    xs: Dict[str, float] = {}
    for layer in layers:
        cursor = 0.0
        for node in layer:
            width = widths.get(node, 1.0)
            xs[node] = cursor + width / 2
            cursor += width + h_gap

    for _round in range(iterations):
        for layer in layers:
            desired = []
            for node in layer:
                adjacent = neighbours.get(node, [])
                if adjacent:
                    desired.append(sum(xs[a] for a in adjacent) / len(adjacent))
                else:
                    desired.append(xs[node])
            _resolve_overlaps(layer, desired, widths, xs, h_gap)

    # normalise to start at 0
    min_left = min(
        (xs[n] - widths.get(n, 1.0) / 2 for layer in layers for n in layer),
        default=0.0,
    )
    for node in xs:
        xs[node] -= min_left

    ys: Dict[str, float] = {}
    cursor_y = 0.0
    for layer in layers:
        layer_height = max((heights.get(n, 1.0) for n in layer), default=1.0)
        centre = cursor_y + layer_height / 2
        for node in layer:
            ys[node] = centre
        cursor_y += layer_height + v_gap
    return xs, ys


def _resolve_overlaps(layer: List[str], desired: List[float],
                      widths: Dict[str, float], xs: Dict[str, float],
                      h_gap: float) -> None:
    """Place nodes as close to their desired x as possible, keeping the
    layer order and the minimum gap between boxes."""
    count = len(layer)
    if count == 0:
        return

    def gap_between(left_index: int, right_index: int) -> float:
        return (
            widths.get(layer[left_index], 1.0) / 2 + h_gap
            + widths.get(layer[right_index], 1.0) / 2
        )

    pos = [0.0] * count
    # forward: honour desired positions, never overlapping the left box
    for index in range(count):
        pos[index] = desired[index]
        if index > 0:
            pos[index] = max(
                pos[index], pos[index - 1] + gap_between(index - 1, index)
            )
    # backward: pull boxes that drifted right back toward desired,
    # bounded by their right neighbour
    for index in range(count - 2, -1, -1):
        if pos[index] > desired[index]:
            limit = pos[index + 1] - gap_between(index, index + 1)
            pos[index] = max(desired[index], min(pos[index], limit))
    # forward fix-up: the backward pass may have squeezed a left gap
    for index in range(1, count):
        pos[index] = max(pos[index], pos[index - 1] + gap_between(index - 1, index))
    for node, x in zip(layer, pos):
        xs[node] = x
