"""Geometric primitives and the layout result model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Point:
    """A 2D point in layout coordinates (y grows downward, like SVG)."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass
class LayoutNode:
    """A laid-out node: centre position, box size, label, rank."""

    node_id: str
    x: float
    y: float
    width: float
    height: float
    label: str = ""
    rank: int = 0

    @property
    def left(self) -> float:
        return self.x - self.width / 2

    @property
    def right(self) -> float:
        return self.x + self.width / 2

    @property
    def top(self) -> float:
        return self.y - self.height / 2

    @property
    def bottom(self) -> float:
        return self.y + self.height / 2

    def contains(self, x: float, y: float) -> bool:
        """Point-in-box test (the Stethoscope's click hit-testing)."""
        return self.left <= x <= self.right and self.top <= y <= self.bottom


@dataclass
class LayoutEdge:
    """A laid-out edge: a polyline from source box to target box."""

    src: str
    dst: str
    points: List[Point] = field(default_factory=list)


@dataclass
class Layout:
    """The result of laying out a graph."""

    nodes: Dict[str, LayoutNode]
    edges: List[LayoutEdge]
    width: float
    height: float

    def node_at(self, x: float, y: float) -> Optional[LayoutNode]:
        """The topmost node whose box contains (x, y), if any."""
        for node in self.nodes.values():
            if node.contains(x, y):
                return node
        return None

    def bounds_of(self, node_ids) -> Tuple[float, float, float, float]:
        """Bounding box (left, top, right, bottom) of a set of nodes."""
        chosen = [self.nodes[n] for n in node_ids if n in self.nodes]
        if not chosen:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            min(n.left for n in chosen),
            min(n.top for n in chosen),
            max(n.right for n in chosen),
            max(n.bottom for n in chosen),
        )


def node_size_for_label(label: str, char_width: float = 7.0,
                        line_height: float = 16.0,
                        padding: float = 10.0) -> Tuple[float, float]:
    """Estimate a node's box size from its label text (monospace model)."""
    lines = label.splitlines() or [""]
    longest = max(len(line) for line in lines)
    width = max(longest * char_width + 2 * padding, 40.0)
    height = max(len(lines) * line_height + 2 * padding, 30.0)
    return width, height
