#!/usr/bin/env python
"""Kernel perf regression gate for the E9 baseline.

Runs the E9 kernel/plan-cache benchmarks fresh and compares every
recorded speedup against the committed baseline in
``benchmarks/BENCH_E9_kernels.json``.  A kernel that lost more than
--tolerance (default 25%) of its baseline speedup fails the check; so
does a kernel missing from the fresh run.

Usage:
    PYTHONPATH=src python benchmarks/check_regression.py          # check
    PYTHONPATH=src python benchmarks/check_regression.py --write  # rebase

``--write`` regenerates the committed baseline from a fresh run (use
after deliberate kernel changes, then commit the JSON).  Speedups are
ratios of interleaved medians, so they are robust to absolute machine
speed — only a *relative* slowdown of the bulk kernels trips the gate.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_e9_kernels import (  # noqa: E402
    BASELINE_PATH, run_benchmarks, write_results,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="rewrite the committed baseline and exit")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup loss (default .25)")
    args = parser.parse_args()

    fresh = run_benchmarks()
    if args.write:
        write_results(fresh, BASELINE_PATH)
        print(f"baseline rewritten: {BASELINE_PATH}")
        return 0

    if not os.path.exists(BASELINE_PATH):
        print(f"no committed baseline at {BASELINE_PATH}; "
              "run with --write first", file=sys.stderr)
        return 2
    with open(BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = []
    floor = 1.0 - args.tolerance
    checks = dict(baseline.get("kernels", {}))
    checks["plan_cache"] = baseline.get("plan_cache", {})
    fresh_all = dict(fresh["kernels"])
    fresh_all["plan_cache"] = fresh["plan_cache"]
    for name, committed in sorted(checks.items()):
        want = committed.get("speedup")
        got = fresh_all.get(name, {}).get("speedup")
        if got is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        status = "ok"
        if got < want * floor:
            status = "REGRESSED"
            failures.append(
                f"{name}: speedup {got}x < {floor:.0%} of baseline {want}x")
        print(f"{name:22s} baseline={want:7.2f}x fresh={got:7.2f}x {status}")

    if failures:
        print(f"\n{len(failures)} kernel(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall kernels within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
