#!/usr/bin/env python
"""Perf regression gate for the committed E9-E14 baselines.

E9 (kernels): runs the kernel/plan-cache benchmarks fresh and compares
every recorded speedup against the committed baseline in
``benchmarks/BENCH_E9_kernels.json``.  A kernel that lost more than
--tolerance (default 25%) of its baseline speedup fails the check; so
does a kernel missing from the fresh run.

E10 (connections): runs the connection-scaling benchmarks fresh and
checks the *invariants* — every connection served, every pipelined
response delivered, zero broadcast events lost for keep-up
subscribers, identical streams — against both the fresh run and the
committed ``benchmarks/BENCH_E10_connections.json``.  Raw rates are
machine-dependent, so they are printed but never gated.

E11 (partition parallelism): runs the worker-pool benchmarks fresh,
gates the deterministic *modelled* 4-worker speedup (must stay >= 2.5x
and within --tolerance of ``benchmarks/BENCH_E11_parallel.json``) and
the pool invariants (identical rows, real remote dispatch, recovery
from a killed worker).  Measured wall-clock speedups are printed
always, but gated against the baseline only when both the fresh run
and the baseline were taken on >= 4 cores.

E12 (durability): runs the WAL/checkpoint/recovery benchmarks fresh
and checks the *invariants* -- group commit batched (fewer fsyncs than
records), every record durable, recovery byte-identical to the
acknowledged state from both a raw WAL and a checkpoint + tail,
checkpoints round-trip byte-identically -- against both the fresh run
and the committed ``benchmarks/BENCH_E12_durability.json``.  Rates are
printed but never gated.

E13 (replication): runs the WAL-shipping benchmarks fresh and checks
the *invariants* -- replication lag drains to zero after the write
load, the replica finishes byte-identical to the primary, failover
promotes onto a clean acked prefix with a bumped epoch and serves
reads -- against both the fresh run and the committed
``benchmarks/BENCH_E13_replication.json``.  Lag and failover times are
printed but never gated.

E14 (adaptive optimization): runs the skewed-selectivity feedback
benchmark fresh and gates the deterministic *modelled* warm-adaptive
speedup (must stay >= 1.5x and within --tolerance of
``benchmarks/BENCH_E14_adaptive.json``) plus the invariants — rows
byte-identical between static and adaptive plans, the cold adaptive
compile matching the static plan exactly, the warm plan actually
reordered, and the stats-store snapshot round-tripping.  Measured
wall-clock speedups are printed but never gated.

Usage:
    PYTHONPATH=src python benchmarks/check_regression.py          # check
    PYTHONPATH=src python benchmarks/check_regression.py --write  # rebase
    PYTHONPATH=src python benchmarks/check_regression.py --only e10

``--write`` regenerates the committed baselines from a fresh run (use
after deliberate changes, then commit the JSONs).  E9 speedups are
ratios of interleaved medians, so they are robust to absolute machine
speed — only a *relative* slowdown of the bulk kernels trips the gate.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_e9_kernels  # noqa: E402
import bench_e10_connections  # noqa: E402
import bench_e11_parallel  # noqa: E402
import bench_e12_durability  # noqa: E402
import bench_e13_replication  # noqa: E402
import bench_e14_adaptive  # noqa: E402


def check_e9(args) -> int:
    fresh = bench_e9_kernels.run_benchmarks()
    if args.write:
        bench_e9_kernels.write_results(
            fresh, bench_e9_kernels.BASELINE_PATH)
        print(f"baseline rewritten: {bench_e9_kernels.BASELINE_PATH}")
        return 0

    if not os.path.exists(bench_e9_kernels.BASELINE_PATH):
        print(f"no committed baseline at "
              f"{bench_e9_kernels.BASELINE_PATH}; run with --write "
              "first", file=sys.stderr)
        return 2
    with open(bench_e9_kernels.BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = []
    floor = 1.0 - args.tolerance
    checks = dict(baseline.get("kernels", {}))
    checks["plan_cache"] = baseline.get("plan_cache", {})
    fresh_all = dict(fresh["kernels"])
    fresh_all["plan_cache"] = fresh["plan_cache"]
    for name, committed in sorted(checks.items()):
        want = committed.get("speedup")
        got = fresh_all.get(name, {}).get("speedup")
        if got is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        status = "ok"
        if got < want * floor:
            status = "REGRESSED"
            failures.append(
                f"{name}: speedup {got}x < {floor:.0%} of baseline {want}x")
        print(f"{name:22s} baseline={want:7.2f}x fresh={got:7.2f}x {status}")

    if failures:
        print(f"\n{len(failures)} kernel(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall kernels within tolerance")
    return 0


def check_e10(args) -> int:
    fresh = bench_e10_connections.run_benchmarks()
    if args.write:
        bench_e10_connections.write_results(
            fresh, bench_e10_connections.BASELINE_PATH)
        print("baseline rewritten: "
              f"{bench_e10_connections.BASELINE_PATH}")
        return 0

    if not os.path.exists(bench_e10_connections.BASELINE_PATH):
        print(f"no committed baseline at "
              f"{bench_e10_connections.BASELINE_PATH}; run with "
              "--write first", file=sys.stderr)
        return 2
    with open(bench_e10_connections.BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = list(bench_e10_connections.check_invariants(fresh))
    # the committed baseline must hold every invariant the fresh run
    # knows about — a baseline rebased over a violation is itself a bug
    for name in fresh["invariants"]:
        if not baseline.get("invariants", {}).get(name, False):
            failures.append(
                f"committed baseline violates invariant: {name}")
    for name, held in sorted(fresh["invariants"].items()):
        print(f"{name:26s} {'ok' if held else 'VIOLATED'}")
    conn = fresh["connections"]
    fan = fresh["fanout"]
    print(f"(info) {conn['ok']}/{conn['target']} connections at "
          f"{conn['conns_per_s']} conn/s; {fan['subscribers']} "
          f"subscribers, {fan['lost_events']} lost, "
          f"{fan['delivered_per_s']} entries/s")

    if failures:
        print(f"\n{len(failures)} E10 check(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall connection-scaling invariants hold")
    return 0


def check_e11(args) -> int:
    fresh = bench_e11_parallel.run_benchmarks()
    if args.write:
        bench_e11_parallel.write_results(
            fresh, bench_e11_parallel.BASELINE_PATH)
        print("baseline rewritten: "
              f"{bench_e11_parallel.BASELINE_PATH}")
        return 0

    if not os.path.exists(bench_e11_parallel.BASELINE_PATH):
        print(f"no committed baseline at "
              f"{bench_e11_parallel.BASELINE_PATH}; run with "
              "--write first", file=sys.stderr)
        return 2
    with open(bench_e11_parallel.BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = list(bench_e11_parallel.check_invariants(fresh))
    for name in fresh["invariants"]:
        if not baseline.get("invariants", {}).get(name, False):
            failures.append(
                f"committed baseline violates invariant: {name}")
    for name, held in sorted(fresh["invariants"].items()):
        print(f"{name:26s} {'ok' if held else 'VIOLATED'}")

    floor = 1.0 - args.tolerance
    want = baseline.get("modelled", {}).get("speedup", 2.5)
    got = fresh["modelled"]["speedup"]
    status = "ok"
    if got < 2.5:
        status = "REGRESSED"
        failures.append(
            f"modelled 4-worker speedup {got}x < required 2.5x")
    elif got < want * floor:
        status = "REGRESSED"
        failures.append(
            f"modelled 4-worker speedup {got}x < {floor:.0%} of "
            f"baseline {want}x")
    print(f"{'modelled_speedup':26s} baseline={want:.2f}x "
          f"fresh={got:.2f}x {status}")

    # measured wall clock: only comparable machine-to-machine when both
    # runs had real cores to parallelize across
    cores = fresh["measured"]["cores"]
    base_cores = baseline.get("measured", {}).get("cores", 1)
    gate_measured = cores >= 4 and base_cores >= 4
    for workers, result in sorted(fresh["measured"]["pools"].items()):
        got = result["speedup"]
        want = baseline.get("measured", {}).get("pools", {}) \
                       .get(workers, {}).get("speedup")
        status = "info"
        if gate_measured and want is not None and got < want * floor:
            status = "REGRESSED"
            failures.append(
                f"measured {workers}-worker speedup {got}x < "
                f"{floor:.0%} of baseline {want}x")
        elif gate_measured:
            status = "ok"
        print(f"{'measured_' + workers + 'w':26s} "
              f"baseline={want if want is not None else '-'}x "
              f"fresh={got}x {status}")
    if not gate_measured:
        print(f"(info) measured speedups not gated: fresh run on "
              f"{cores} core(s), baseline on {base_cores}")

    if failures:
        print(f"\n{len(failures)} E11 check(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall partition-parallel checks hold")
    return 0


def check_e12(args) -> int:
    fresh = bench_e12_durability.run_benchmarks()
    if args.write:
        bench_e12_durability.write_results(
            fresh, bench_e12_durability.BASELINE_PATH)
        print("baseline rewritten: "
              f"{bench_e12_durability.BASELINE_PATH}")
        return 0

    if not os.path.exists(bench_e12_durability.BASELINE_PATH):
        print(f"no committed baseline at "
              f"{bench_e12_durability.BASELINE_PATH}; run with "
              "--write first", file=sys.stderr)
        return 2
    with open(bench_e12_durability.BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = list(bench_e12_durability.check_invariants(fresh))
    # the committed baseline must hold every invariant the fresh run
    # knows about -- a baseline rebased over a violation is itself a bug
    for name in fresh["invariants"]:
        if not baseline.get("invariants", {}).get(name, False):
            failures.append(
                f"committed baseline violates invariant: {name}")
    for name, held in sorted(fresh["invariants"].items()):
        print(f"{name:32s} {'ok' if held else 'VIOLATED'}")
    batched = fresh["group_commit"]["batched"]
    recovery = fresh["recovery"]
    print(f"(info) {batched['records']} records in "
          f"{batched['fsyncs']} fsyncs "
          f"({batched['records_per_fsync']} rec/fsync); full replay "
          f"{recovery['full_replay']['wal_records']} records in "
          f"{recovery['full_replay']['seconds']}s, checkpointed tail "
          f"{recovery['checkpointed']['wal_records']} in "
          f"{recovery['checkpointed']['seconds']}s")

    if failures:
        print(f"\n{len(failures)} E12 check(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall durability invariants hold")
    return 0


def check_e13(args) -> int:
    fresh = bench_e13_replication.run_benchmarks()
    if args.write:
        bench_e13_replication.write_results(
            fresh, bench_e13_replication.BASELINE_PATH)
        print("baseline rewritten: "
              f"{bench_e13_replication.BASELINE_PATH}")
        return 0

    if not os.path.exists(bench_e13_replication.BASELINE_PATH):
        print(f"no committed baseline at "
              f"{bench_e13_replication.BASELINE_PATH}; run with "
              "--write first", file=sys.stderr)
        return 2
    with open(bench_e13_replication.BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = list(bench_e13_replication.check_invariants(fresh))
    # the committed baseline must hold every invariant the fresh run
    # knows about -- a baseline rebased over a violation is itself a bug
    for name in fresh["invariants"]:
        if not baseline.get("invariants", {}).get(name, False):
            failures.append(
                f"committed baseline violates invariant: {name}")
    for name, held in sorted(fresh["invariants"].items()):
        print(f"{name:32s} {'ok' if held else 'VIOLATED'}")
    lag = fresh["lag"]
    failover = fresh["failover"]
    print(f"(info) {lag['records']} records at {lag['records_per_s']} "
          f"rec/s, max lag {lag['max_lag_records']} records, drained "
          f"in {lag['drain_seconds']}s; failover promote "
          f"{failover['promote_seconds']}s, first read "
          f"{failover['first_read_seconds']}s")

    if failures:
        print(f"\n{len(failures)} E13 check(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall replication invariants hold")
    return 0


def check_e14(args) -> int:
    fresh = bench_e14_adaptive.run_benchmarks()
    if args.write:
        bench_e14_adaptive.write_results(
            fresh, bench_e14_adaptive.BASELINE_PATH)
        print("baseline rewritten: "
              f"{bench_e14_adaptive.BASELINE_PATH}")
        return 0

    if not os.path.exists(bench_e14_adaptive.BASELINE_PATH):
        print(f"no committed baseline at "
              f"{bench_e14_adaptive.BASELINE_PATH}; run with "
              "--write first", file=sys.stderr)
        return 2
    with open(bench_e14_adaptive.BASELINE_PATH) as f:
        baseline = json.load(f)

    failures = list(bench_e14_adaptive.check_invariants(fresh))
    # the committed baseline must hold every invariant the fresh run
    # knows about -- a baseline rebased over a violation is itself a bug
    for name in fresh["invariants"]:
        if not baseline.get("invariants", {}).get(name, False):
            failures.append(
                f"committed baseline violates invariant: {name}")
    for name, held in sorted(fresh["invariants"].items()):
        print(f"{name:32s} {'ok' if held else 'VIOLATED'}")

    floor = 1.0 - args.tolerance
    required = bench_e14_adaptive.REQUIRED_SPEEDUP
    want = baseline.get("modelled", {}).get("speedup", required)
    got = fresh["modelled"]["speedup"]
    status = "ok"
    if got < required:
        status = "REGRESSED"
        failures.append(
            f"modelled adaptive speedup {got}x < required {required}x")
    elif got < want * floor:
        status = "REGRESSED"
        failures.append(
            f"modelled adaptive speedup {got}x < {floor:.0%} of "
            f"baseline {want}x")
    print(f"{'modelled_speedup':32s} baseline={want:.2f}x "
          f"fresh={got:.2f}x {status}")
    print(f"(info) measured wall speedup {fresh['measured']['speedup']}x "
          f"(not gated); {fresh['rows_returned']} rows returned")

    if failures:
        print(f"\n{len(failures)} E14 check(s) failed:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall adaptive-optimization checks hold")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="rewrite the committed baseline(s) and exit")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup loss (default .25)")
    parser.add_argument("--only",
                        choices=["e9", "e10", "e11", "e12", "e13", "e14"],
                        default=None,
                        help="run a single gate instead of all")
    args = parser.parse_args()

    status = 0
    if args.only in (None, "e9"):
        status = max(status, check_e9(args))
    if args.only in (None, "e10"):
        print()
        status = max(status, check_e10(args))
    if args.only in (None, "e11"):
        print()
        status = max(status, check_e11(args))
    if args.only in (None, "e12"):
        print()
        status = max(status, check_e12(args))
    if args.only in (None, "e13"):
        print()
        status = max(status, check_e13(args))
    if args.only in (None, "e14"):
        print()
        status = max(status, check_e14(args))
    return status


if __name__ == "__main__":
    sys.exit(main())
