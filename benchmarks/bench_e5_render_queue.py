"""Experiment E5 — the render-queue ceiling and trace sampling.

Paper §4.2.1: the Event-Dispatch-thread queuing "introduces a delay of
up-to 150ms between rendering of consecutive nodes".  This bench
quantifies the resulting render throughput ceiling (~6.7 nodes/s), shows
backlog growth when the event stream outruns it, and measures how the
online monitor's sampling (drop GREEN repaints under backlog) keeps the
RED signal timely.
"""

import os

from repro.core.coloring import PairSequenceColorizer
from repro.core.painter import GraphPainter
from repro.dot import plan_to_graph
from repro.layout import layout_graph
from repro.viz import build_virtual_space
from repro.viz.color import GREEN
from repro.viz.events import EventDispatchQueue
from repro.workloads import synthetic_plan, trace_for_program

PLAN = synthetic_plan(chains=40, chain_length=4)
EVENTS = trace_for_program(PLAN, workers=4, long_fraction=0.3, seed=31)
LAYOUT = layout_graph(plan_to_graph(PLAN))


def test_e5_throughput_ceiling(benchmark, artifacts):
    """With a 150 ms interval, 100 renders need ~15 s of queue time."""

    def drain_hundred():
        queue = EventDispatchQueue(min_interval_ms=150)
        for index in range(100):
            queue.post(f"n{index}", lambda: None)
        queue.drain()
        return queue.clock_ms

    clock_ms = benchmark(drain_hundred)
    assert clock_ms >= 99 * 150
    with open(os.path.join(artifacts, "e5_render_queue.txt"), "a") as f:
        f.write(f"100 renders need {clock_ms:.0f} ms of EDT time "
                f"(~{100_000 / clock_ms:.1f} nodes/s)\n")


def test_e5_backlog_growth_under_stream(benchmark, artifacts):
    """Feed the full colour stream in 2 s of virtual time: the queue
    cannot keep up, the backlog explodes — why sampling exists."""

    def stream_all():
        space = build_virtual_space(LAYOUT)
        painter = GraphPainter(space, EventDispatchQueue(150))
        colorizer = PairSequenceColorizer()
        for index, event in enumerate(EVENTS):
            painter.apply_all(colorizer.push(event))
            painter.pump(2000.0 * index / len(EVENTS))
        return painter.backlog()

    backlog = benchmark(stream_all)
    with open(os.path.join(artifacts, "e5_render_queue.txt"), "a") as f:
        f.write(f"no sampling: backlog after 2s stream = {backlog}\n")
    assert backlog > 0


def test_e5_sampling_keeps_backlog_bounded(benchmark, artifacts):
    """Drop GREEN repaints once the backlog passes a threshold; the RED
    signal (the long-running instructions the user cares about) still
    renders."""
    threshold = 8

    def stream_sampled():
        space = build_virtual_space(LAYOUT)
        painter = GraphPainter(space, EventDispatchQueue(150))
        colorizer = PairSequenceColorizer()
        dropped = 0
        for index, event in enumerate(EVENTS):
            for action in colorizer.push(event):
                if painter.backlog() > threshold and action.color == GREEN:
                    dropped += 1
                    continue
                painter.apply(action)
            painter.pump(2000.0 * index / len(EVENTS))
        return painter.backlog(), dropped

    backlog, dropped = benchmark(stream_sampled)
    with open(os.path.join(artifacts, "e5_render_queue.txt"), "a") as f:
        f.write(f"sampling(threshold={threshold}): backlog={backlog} "
                f"dropped_greens={dropped}\n")
    assert dropped > 0


def test_e5_latency_of_red_signal(benchmark):
    """Queue latency of the first RED after a burst stays within a few
    render slots when sampling is on."""

    def red_latency():
        space = build_virtual_space(LAYOUT)
        painter = GraphPainter(space, EventDispatchQueue(150))
        colorizer = PairSequenceColorizer()
        for event in EVENTS[:200]:
            for action in colorizer.push(event):
                if action.color != GREEN or painter.backlog() < 4:
                    painter.apply(action)
        painter.flush()
        return painter.queue.max_latency_ms()

    latency = benchmark(red_latency)
    assert latency >= 0
