"""Experiment E6 — the paper's future-work features as ablations.

Gradient colouring (vs binary RED/GREEN), selective pruning of
administrative instructions (how much smaller the displayed plan gets),
and the analytic micro-analysis interface (cost of computing the full
statistics table)."""

import os

from repro.core.microanalysis import TraceAnalyzer
from repro.core.pruning import prune_administrative
from repro.core.session import Stethoscope
from repro.dot.writer import plan_to_dot
from repro.profiler import Profiler
from repro.tpch import query_sql


def capture(db, name):
    profiler = Profiler()
    outcome = db.execute(query_sql(name), listener=profiler)
    return plan_to_dot(outcome.program), profiler.events


def test_e6_gradient_coloring(benchmark, tpch_db, artifacts):
    dot_text, events = capture(tpch_db, "q1")
    session = Stethoscope.offline_from_memory(dot_text, events)
    painted = benchmark(session.apply_gradient_coloring)
    fills = {
        session.space.shape_of(node).fill.to_hex()
        for node in session.painter.rendered
    }
    with open(os.path.join(artifacts, "e6_extensions.txt"), "a") as f:
        f.write(f"gradient: painted={painted} distinct_colors={len(fills)}\n")
    assert len(fills) > 2  # a gradient, not binary RED/GREEN


def test_e6_pruning_reduction(benchmark, tpch_db, artifacts):
    dot_text, events = capture(tpch_db, "q5")
    session = Stethoscope.offline_from_memory(dot_text, events)
    pruned = benchmark(
        prune_administrative, session.graph, None, True
    )
    before = session.graph.node_count()
    after = pruned.node_count()
    with open(os.path.join(artifacts, "e6_extensions.txt"), "a") as f:
        f.write(f"pruning q5: {before} -> {after} nodes "
                f"({100 * (before - after) / before:.0f}% removed)\n")
    assert after < before


def test_e6_microanalysis_table(benchmark, tpch_db, artifacts):
    _dot, events = capture(tpch_db, "q1")

    def analyse():
        analyzer = TraceAnalyzer(events)
        return (analyzer.per_instruction(), analyzer.per_operator(),
                analyzer.summary())

    per_instruction, per_operator, summary = benchmark(analyse)
    with open(os.path.join(artifacts, "e6_extensions.txt"), "a") as f:
        f.write(f"microanalysis q1: {len(per_instruction)} instructions, "
                f"{len(per_operator)} operators, "
                f"p99={summary['p99_usec']}usec\n")
    assert per_instruction and per_operator


def test_e6_microanalysis_csv_export(benchmark, tpch_db, artifacts):
    _dot, events = capture(tpch_db, "q3")
    analyzer = TraceAnalyzer(events)
    csv = benchmark(analyzer.to_csv)
    path = os.path.join(artifacts, "e6_q3_microanalysis.csv")
    with open(path, "w") as f:
        f.write(csv + "\n")
    assert csv.splitlines()[0].startswith("pc,")


def test_e6_optimizer_pass_ablation(benchmark, tpch_db, artifacts):
    """Per-pass plan-size deltas (what each optimizer stage does to the
    graph the Stethoscope displays)."""
    from repro.mal.optimizer import default_pipe
    from repro.sqlfe import compile_sql

    sql = query_sql("q1")

    def apply_pipeline():
        pipeline = default_pipe(nparts=4, mitosis_threshold=400)
        for opt_pass in pipeline.passes:
            if hasattr(opt_pass, "catalog"):
                opt_pass.catalog = tpch_db.catalog
        pipeline.apply(compile_sql(tpch_db.catalog, sql))
        return pipeline.reports

    reports = benchmark(apply_pipeline)
    with open(os.path.join(artifacts, "e6_extensions.txt"), "a") as f:
        for report in reports:
            f.write(f"pass {report.name}: {report.instructions_before} -> "
                    f"{report.instructions_after}\n")
    assert any(r.delta != 0 for r in reports)
