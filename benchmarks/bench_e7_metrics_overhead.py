"""Experiment E7 — instrumentation overhead.

The metrics layer (``repro.metrics``) rides every hot path: the MAL
execution pipeline records per-module instruction counts/timings and
worker utilisation, and the UDP emitter counts every datagram it ships.
These benchmarks measure the cost of that: the same workload with the
registry live versus suspended (``Registry.enabled = False`` — the
recording calls still happen, they just return immediately, which is
exactly what the wired-in code pays when metrics are "off").

Acceptance target (ISSUE): < 5% throughput loss on the MAL interpreter
hot path.
"""

import os

import repro.metrics as metrics
from repro.mal.interpreter import Interpreter
from repro.profiler import UdpEmitter, format_event
from repro.server import Database
from repro.tpch import query_sql
from repro.workloads import synthetic_trace

QUERY = query_sql("q6")


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _compare(run_bare, run_instrumented, repeat=9, inner=10):
    """Median seconds-per-call for both variants, sampled interleaved
    (bare, instrumented, bare, ...) so drifting machine load hits both
    equally, with ``inner`` calls per timing sample to amortise timer
    noise."""
    import time

    bare_samples, instr_samples = [], []
    for _ in range(repeat):
        for run, samples in ((run_bare, bare_samples),
                             (run_instrumented, instr_samples)):
            began = time.perf_counter()
            for _ in range(inner):
                run()
            samples.append((time.perf_counter() - began) / inner)
    return _median(bare_samples), _median(instr_samples)


def test_e7_interpreter_overhead(benchmark, tpch_db_small, artifacts):
    program = tpch_db_small.compile(QUERY)

    def run_instrumented():
        Interpreter(tpch_db_small.catalog).run(program)

    def run_bare():
        with metrics.disabled():
            Interpreter(tpch_db_small.catalog).run(program)

    bare, instrumented = _compare(run_bare, run_instrumented)
    overhead = instrumented / bare - 1.0

    benchmark(run_instrumented)
    with open(os.path.join(artifacts, "e7_metrics.txt"), "a") as f:
        f.write(f"interpreter q6: bare={bare * 1e3:.2f}ms "
                f"instrumented={instrumented * 1e3:.2f}ms "
                f"overhead={overhead:+.2%}\n")
    # the acceptance bound is 5%; leave headroom for timer noise in CI
    assert overhead < 0.10, f"interpreter overhead {overhead:.1%}"


def test_e7_scheduler_overhead(benchmark, tpch_db_small, artifacts):
    def run_instrumented():
        tpch_db_small.execute(QUERY)

    def run_bare():
        with metrics.disabled():
            tpch_db_small.execute(QUERY)

    bare, instrumented = _compare(run_bare, run_instrumented, inner=5)
    overhead = instrumented / bare - 1.0

    benchmark(run_instrumented)
    with open(os.path.join(artifacts, "e7_metrics.txt"), "a") as f:
        f.write(f"dataflow q6: bare={bare * 1e3:.2f}ms "
                f"instrumented={instrumented * 1e3:.2f}ms "
                f"overhead={overhead:+.2%}\n")
    assert overhead < 0.10, f"scheduler overhead {overhead:.1%}"


def test_e7_udp_stream_overhead(benchmark, artifacts):
    events = synthetic_trace(chains=40, chain_length=6)
    lines = [format_event(e) for e in events]

    def ship():
        emitter = UdpEmitter(port=40999)  # no receiver: pure send path
        for line in lines:
            emitter.send_line(line)
        emitter.close()

    def ship_bare():
        with metrics.disabled():
            ship()

    bare, instrumented = _compare(ship_bare, ship, inner=3)
    per_datagram_usec = (instrumented - bare) / len(lines) * 1e6

    benchmark(ship)
    with open(os.path.join(artifacts, "e7_metrics.txt"), "a") as f:
        f.write(f"udp stream ({len(lines)} lines): "
                f"bare={bare * 1e3:.3f}ms "
                f"instrumented={instrumented * 1e3:.3f}ms "
                f"added={per_datagram_usec:.3f}us/datagram\n")
    # a bare loopback sendto is ~2us, so a relative bound would only
    # measure the microbench; what matters is the absolute added cost
    # per datagram staying far below the ~20us a real datagram costs
    # to format, ship and parse end to end
    assert per_datagram_usec < 5.0, (
        f"udp counting adds {per_datagram_usec:.2f}us/datagram"
    )


def test_e7_snapshot_and_exposition_cost(benchmark, tpch_db_small,
                                         artifacts):
    tpch_db_small.execute(QUERY)  # ensure the registry has data

    def observe():
        snap = metrics.snapshot()
        text = metrics.render_text()
        return len(snap), len(text)

    families, text_bytes = benchmark(observe)
    from repro.metrics.core import REGISTRY

    assert families == len(REGISTRY.families())
    with open(os.path.join(artifacts, "e7_metrics.txt"), "a") as f:
        f.write(f"snapshot: {families} families, "
                f"exposition {text_bytes} bytes\n")


def test_e7_reporter_steady_state(artifacts):
    import time

    with metrics.PeriodicReporter(interval_s=0.02) as reporter:
        db = Database(workers=2)
        from repro.tpch import populate

        populate(db.catalog, scale_factor=0.02, seed=7)
        queries = 0
        deadline = time.perf_counter() + 0.15
        while time.perf_counter() < deadline:
            db.execute("select count(*) from lineitem")
            queries += 1
    assert len(reporter.snapshots) >= 2
    with open(os.path.join(artifacts, "e7_metrics.txt"), "a") as f:
        f.write(f"reporter: {len(reporter.snapshots)} snapshots "
                f"at 20ms cadence across {queries} queries\n")
