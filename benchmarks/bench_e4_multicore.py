"""Experiment E4 — multi-core utilisation analysis (MODELLED).

The paper's online demo "exhibits degree of multi-threaded
parallelization of MAL instructions"; its conclusion reports finding a
plan that ran sequentially when parallel execution was expected.  This
bench sweeps the worker count on TPC-H queries (virtual-time scheduler,
so the speedup curve is deterministic), runs the mitosis on/off ablation,
and reproduces the anomaly detection.

Scope note: every speedup here is *virtual-clock* — the cost model's
makespan under simulated scheduling.  Kernels still execute serially in
this process (Python threads are GIL-bound, and the simulated scheduler
is single-threaded anyway), so nothing below measures real multi-core
wall clock.  For genuine process-parallel execution — partition
fragments on forked workers via ``repro.mal.mpool`` — see experiment
E11 (``bench_e11_parallel.py``), which gates both the modelled speedup
and the pool's correctness invariants.
"""

import os

import pytest

from repro.core.analysis import detect_sequential_anomaly, parallelism_profile
from repro.mal.dataflow import SimulatedScheduler
from repro.mal.optimizer import default_pipe, sequential_pipe
from repro.profiler import Profiler
from repro.sqlfe import compile_sql
from repro.tpch import query_sql


def plan_for(db, sql, workers):
    pipeline = default_pipe(nparts=workers, mitosis_threshold=400)
    for opt_pass in pipeline.passes:
        if hasattr(opt_pass, "catalog"):
            opt_pass.catalog = db.catalog
    return pipeline.apply(compile_sql(db.catalog, sql))


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_e4_worker_sweep_q1(benchmark, tpch_db, workers, artifacts):
    sql = query_sql("q1")
    program = plan_for(tpch_db, sql, workers)

    def run():
        profiler = Profiler()
        result = SimulatedScheduler(
            tpch_db.catalog, workers=workers, listener=profiler
        ).run(program)
        return result, profiler

    result, profiler = benchmark(run)
    profile = parallelism_profile(profiler.events)
    line = (f"q1 workers={workers} makespan={result.total_usec}usec "
            f"threads={profile.threads_used} "
            f"speedup={profile.speedup_vs_serial:.2f}\n")
    with open(os.path.join(artifacts, "e4_multicore.txt"), "a") as f:
        f.write(line)
    if workers > 1:
        assert profile.threads_used > 1


def test_e4_parallel_beats_sequential_makespan(benchmark, tpch_db,
                                               artifacts):
    """The headline shape: virtual makespan shrinks with workers."""
    sql = query_sql("q6")

    def makespan(workers):
        program = plan_for(tpch_db, sql, workers)
        return SimulatedScheduler(
            tpch_db.catalog, workers=workers
        ).run(program).total_usec

    serial = makespan(1)
    parallel = benchmark(makespan, 4)
    speedup = serial / parallel
    with open(os.path.join(artifacts, "e4_multicore.txt"), "a") as f:
        f.write(f"q6 serial={serial} 4workers={parallel} "
                f"speedup={speedup:.2f}x\n")
    assert speedup > 1.3


def test_e4_mitosis_ablation(benchmark, tpch_db, artifacts):
    """Ablation: dataflow alone (no mitosis) barely helps a scan-heavy
    query; mitosis is what creates the parallel work."""
    from repro.mal.optimizer import CommonSubexpression, ConstantFold, \
        Dataflow, DeadCode, Pipeline

    sql = query_sql("q6")
    no_mitosis = Pipeline("no_mitosis", [
        ConstantFold(), CommonSubexpression(), DeadCode(), Dataflow(),
    ])
    program_plain = no_mitosis.apply(compile_sql(tpch_db.catalog, sql))
    program_mitosis = plan_for(tpch_db, sql, 4)

    def run_plain():
        return SimulatedScheduler(
            tpch_db.catalog, workers=4
        ).run(program_plain).total_usec

    plain = benchmark(run_plain)
    mitosis = SimulatedScheduler(
        tpch_db.catalog, workers=4
    ).run(program_mitosis).total_usec
    with open(os.path.join(artifacts, "e4_multicore.txt"), "a") as f:
        f.write(f"ablation q6 4workers: no_mitosis={plain} "
                f"with_mitosis={mitosis}\n")
    assert mitosis < plain


def test_e4_contention_ablation(benchmark, tpch_db, artifacts):
    """Resource contention (the "influence of concurrent processes")
    bends the speedup curve: with the memory-contention knob on, 4
    workers gain less than the ideal machine shows."""
    sql = query_sql("q6")
    program = plan_for(tpch_db, sql, 4)
    serial = SimulatedScheduler(tpch_db.catalog, workers=1).run(
        plan_for(tpch_db, sql, 4)
    ).total_usec

    def contended():
        return SimulatedScheduler(
            tpch_db.catalog, workers=4, contention=0.15
        ).run(program).total_usec

    loaded = benchmark(contended)
    ideal = SimulatedScheduler(tpch_db.catalog, workers=4).run(
        program
    ).total_usec
    with open(os.path.join(artifacts, "e4_multicore.txt"), "a") as f:
        f.write(
            f"contention q6: serial={serial} ideal4={ideal} "
            f"contended4={loaded} "
            f"(speedup {serial / ideal:.2f}x -> {serial / loaded:.2f}x)\n"
        )
    assert ideal <= loaded < serial


def test_e4_sequential_anomaly_reproduced(benchmark, tpch_db, artifacts):
    """The paper's reported finding, detected from the trace alone."""
    sql = query_sql("q1")
    program = sequential_pipe().apply(compile_sql(tpch_db.catalog, sql))

    def run():
        profiler = Profiler()
        SimulatedScheduler(
            tpch_db.catalog, workers=4, listener=profiler
        ).run(program)
        return detect_sequential_anomaly(profiler.events,
                                         expected_threads=4)

    anomaly = benchmark(run)
    assert anomaly.detected
    with open(os.path.join(artifacts, "e4_multicore.txt"), "a") as f:
        f.write(f"anomaly: {anomaly.explanation}\n")
