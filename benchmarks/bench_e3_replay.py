"""Experiment E3 — offline replay: step, fast-forward, rewind, and the
costly-instruction window analysis (paper §5, offline demo)."""

import os

from repro.core.painter import GraphPainter
from repro.core.replay import ReplayController
from repro.dot import plan_to_graph
from repro.layout import layout_graph
from repro.viz import build_virtual_space
from repro.viz.events import EventDispatchQueue
from repro.workloads import synthetic_plan, trace_for_program

PLAN = synthetic_plan(chains=60, chain_length=4)
EVENTS = trace_for_program(PLAN, workers=4, long_fraction=0.05, seed=21)
SPACE_LAYOUT = layout_graph(plan_to_graph(PLAN))


def fresh_replay(threshold=None):
    space = build_virtual_space(SPACE_LAYOUT)
    painter = GraphPainter(space, EventDispatchQueue(min_interval_ms=150))
    return ReplayController(EVENTS, painter, threshold)


def test_e3_step_through_rate(benchmark, artifacts):
    def run_to_end():
        replay = fresh_replay()
        return replay.run_to_end()

    ran = benchmark(run_to_end)
    assert ran == len(EVENTS)
    with open(os.path.join(artifacts, "e3_replay.txt"), "a") as f:
        f.write(f"full replay: {ran} events\n")


def test_e3_fast_forward_until_clock(benchmark):
    midpoint = EVENTS[len(EVENTS) // 2].clock_usec

    def fast_forward():
        replay = fresh_replay()
        return replay.fast_forward_until(midpoint)

    ran = benchmark(fast_forward)
    assert 0 < ran < len(EVENTS)


def test_e3_rewind_cost(benchmark):
    """Rewind re-derives the display deterministically — measure the
    cost of jumping back near the start from the end."""
    replay = fresh_replay()
    replay.run_to_end()

    def rewind_and_return():
        replay.seek(10)
        replay.run_to_end()
        return replay.position

    position = benchmark(rewind_and_return)
    assert position == len(EVENTS)


def test_e3_costly_between_states(benchmark, artifacts):
    replay = fresh_replay()
    replay.run_to_end()

    def window():
        return replay.costly_between(0, len(EVENTS), top=10)

    costly = benchmark(window)
    assert len(costly) == 10
    assert costly[0].usec >= costly[-1].usec
    with open(os.path.join(artifacts, "e3_replay.txt"), "a") as f:
        f.write("top costly: "
                + ", ".join(f"pc={e.pc}:{e.usec}us" for e in costly[:5])
                + "\n")


def test_e3_threshold_replay(benchmark):
    def run():
        replay = fresh_replay(threshold=10_000)
        replay.run_to_end()
        return len(replay.painter.history)

    painted = benchmark(run)
    assert painted > 0
