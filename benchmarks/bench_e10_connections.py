"""Experiment E10 — connection scaling on the asyncio front-end.

The server front-end moved from thread-per-connection to a single
asyncio event loop (request pipelining, per-session state, executor-run
queries) with a trace broadcast hub fanning one profiler stream out to
N subscribers.  These benchmarks measure the C10k-style properties that
rewrite bought:

- ``connections``: open a few hundred concurrent clients against one
  server and round-trip a ping on every one of them;
- ``pipelining``: one connection sends a burst of requests without
  waiting and then reads all responses (the event loop answers in
  request order);
- ``fanout``: 100+ subscribers follow one TPC-H query through the
  broadcast hub — every keep-up consumer must see the identical
  sequence with zero loss, and the watched query must not slow down.

Raw throughput numbers are machine-dependent, so the regression gate
(``benchmarks/check_regression.py``) checks the *invariants* recorded
in the results — every connection served, zero events lost, responses
in order — rather than rates.  Running this file standalone prints a
summary and writes ``e10_connections_fresh.json`` into
``benchmarks/artifacts/``; the committed
``benchmarks/BENCH_E10_connections.json`` is the baseline the gate
compares against.
"""

import json
import os
import socket
import time
from concurrent.futures import ThreadPoolExecutor

from repro.server import Database, MClient, Mserver
from repro.server.protocol import decode_message, encode_message
from repro.tpch import populate

CONNECTIONS = 256
PIPELINE_DEPTH = 500
SUBSCRIBERS = 128

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_E10_connections.json")

FANOUT_QUERY = "select count(*) from lineitem where l_quantity > 5"


def _database(scale=0.02):
    db = Database(workers=2, mitosis_threshold=50)
    populate(db.catalog, scale_factor=scale, seed=3)
    return db


def run_connection_benchmark(server, connections=CONNECTIONS):
    """Open ``connections`` concurrent clients; ping each one."""

    def connect_and_ping(_i):
        try:
            with MClient(port=server.port, retries=0) as client:
                return bool(client.ping())
        except Exception:
            return False

    began = time.perf_counter()
    with ThreadPoolExecutor(max_workers=64) as pool:
        outcomes = list(pool.map(connect_and_ping, range(connections)))
    elapsed = time.perf_counter() - began
    ok = sum(outcomes)
    return {
        "target": connections,
        "ok": ok,
        "seconds": round(elapsed, 3),
        "conns_per_s": round(connections / elapsed, 1),
    }


def run_pipelining_benchmark(server, depth=PIPELINE_DEPTH):
    """Send ``depth`` pings without waiting; read every response."""
    sock = socket.create_connection(("127.0.0.1", server.port),
                                    timeout=30.0)
    try:
        burst = b"".join(encode_message({"op": "ping", "i": i})
                         for i in range(depth))
        began = time.perf_counter()
        sock.sendall(burst)
        buffered = b""
        responses = 0
        while responses < depth:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffered += chunk
            while b"\n" in buffered:
                line, buffered = buffered.split(b"\n", 1)
                if decode_message(line).get("pong"):
                    responses += 1
        elapsed = time.perf_counter() - began
    finally:
        sock.close()
    return {
        "depth": depth,
        "responses": responses,
        "seconds": round(elapsed, 3),
        "requests_per_s": round(depth / elapsed, 1),
    }


def run_fanout_benchmark(server, subscribers=SUBSCRIBERS):
    """N subscribers follow one TPC-H query through the hub."""
    clients = [MClient(port=server.port, retries=0)
               for _ in range(subscribers)]
    try:
        subs = [c.subscribe() for c in clients]
        with MClient(port=server.port, retries=0) as runner:
            began = time.perf_counter()
            runner.query(FANOUT_QUERY)
            query_seconds = time.perf_counter() - began

        def drain(sub):
            entries = list(sub.entries(until_end=True, max_seconds=30.0))
            summary = sub.stop()
            return entries, summary

        began = time.perf_counter()
        with ThreadPoolExecutor(max_workers=64) as pool:
            drained = list(pool.map(drain, subs))
        drain_seconds = time.perf_counter() - began
    finally:
        for client in clients:
            client.close()

    streams = [[e["seq"] for e in entries] for entries, _ in drained]
    reference = streams[0] if streams else []
    lost = sum(summary["dropped"] + summary["missed"]
               for _, summary in drained)
    matching = sum(1 for seqs in streams if seqs == reference)
    delivered = sum(len(seqs) for seqs in streams)
    return {
        "subscribers": subscribers,
        "events_per_subscriber": len(reference),
        "matching_streams": matching,
        "lost_events": lost,
        "delivered_total": delivered,
        "delivered_ratio": round(
            delivered / (len(reference) * subscribers), 4)
        if reference else 0.0,
        "query_seconds": round(query_seconds, 3),
        "drain_seconds": round(drain_seconds, 3),
        "delivered_per_s": round(delivered / drain_seconds, 1),
    }


def run_benchmarks(connections=CONNECTIONS, depth=PIPELINE_DEPTH,
                   subscribers=SUBSCRIBERS, scale=0.02):
    db = _database(scale=scale)
    with Mserver(db, max_subscribers=max(subscribers + 8, 64),
                 subscriber_buffer=8192) as server:
        results = {
            "connections": run_connection_benchmark(server, connections),
            "pipelining": run_pipelining_benchmark(server, depth),
            "fanout": run_fanout_benchmark(server, subscribers),
        }
    results["invariants"] = invariants(results)
    return results


def invariants(results):
    """The machine-independent facts the regression gate enforces."""
    conn = results["connections"]
    pipe = results["pipelining"]
    fan = results["fanout"]
    return {
        "all_connections_served": conn["ok"] == conn["target"],
        "all_pipelined_responses": pipe["responses"] == pipe["depth"],
        "zero_events_lost": fan["lost_events"] == 0,
        "identical_streams": (fan["matching_streams"]
                              == fan["subscribers"]),
        "full_delivery": fan["delivered_ratio"] == 1.0,
    }


def check_invariants(results):
    """Failure strings for every violated invariant (empty = pass)."""
    return [f"invariant violated: {name}"
            for name, held in results["invariants"].items() if not held]


def write_results(results, path):
    with open(path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# pytest entry points (ride the benchmarks/ suite)
# ---------------------------------------------------------------------------


def test_e10_connection_scaling(artifacts):
    results = run_benchmarks()
    write_results(results,
                  os.path.join(artifacts, "e10_connections_fresh.json"))
    failures = check_invariants(results)
    assert not failures, "; ".join(failures)


def main():
    results = run_benchmarks()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    write_results(results,
                  os.path.join(ARTIFACT_DIR,
                               "e10_connections_fresh.json"))
    conn = results["connections"]
    pipe = results["pipelining"]
    fan = results["fanout"]
    print(f"connections  {conn['ok']}/{conn['target']} served in "
          f"{conn['seconds']}s ({conn['conns_per_s']} conn/s)")
    print(f"pipelining   {pipe['responses']}/{pipe['depth']} responses "
          f"in {pipe['seconds']}s ({pipe['requests_per_s']} req/s)")
    print(f"fanout       {fan['subscribers']} subscribers x "
          f"{fan['events_per_subscriber']} events, "
          f"{fan['lost_events']} lost, ratio {fan['delivered_ratio']} "
          f"({fan['delivered_per_s']} entries/s)")
    for name, held in sorted(results["invariants"].items()):
        print(f"invariant    {name}: {'ok' if held else 'VIOLATED'}")
    print(f"wrote "
          f"{os.path.join(ARTIFACT_DIR, 'e10_connections_fresh.json')}")
    return 0 if not check_invariants(results) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
