"""Experiment E2 — online streaming: UDP trace delivery and filtering.

Measures the profiler→UDP→textual-Stethoscope path: events/second
through a real socket, the effect of server-side filter selectivity, and
multi-server fan-in — the paper's "flexible options for filtering of
execution traces" and distributed tracing claims.
"""

import os

from repro.core.textual import TextualStethoscope
from repro.profiler import EventFilter, Profiler, UdpEmitter, format_event
from repro.profiler.events import TraceEvent
from repro.workloads import synthetic_trace


def make_events(count):
    events = synthetic_trace(chains=max(2, count // 12), chain_length=4)
    return (events * (count // len(events) + 1))[:count]


def test_e2_udp_roundtrip_throughput(benchmark, artifacts):
    events = make_events(2_000)
    lines = [format_event(e) for e in events]

    def ship():
        textual = TextualStethoscope()
        connection = textual.connect("bench")
        emitter = UdpEmitter(port=connection.port)
        for line in lines:
            emitter.send_line(line)
        emitter.send_end()
        textual.drain_until_ended(max_rounds=2000, timeout=0.02)
        received = len(connection.events)
        emitter.close()
        textual.close()
        return received

    received = benchmark(ship)
    with open(os.path.join(artifacts, "e2_stream.txt"), "a") as f:
        f.write(f"udp roundtrip: sent={len(lines)} received={received}\n")
    # UDP may drop under pressure; the OS buffer makes local loss rare
    assert received > len(lines) * 0.8


def test_e2_server_side_filter_reduces_traffic(benchmark, artifacts):
    events = make_events(2_000)

    def filtered_volume():
        profiler = Profiler(EventFilter(statuses={"done"}),
                            keep_events=False)
        shipped = []
        profiler.add_sink(shipped.append)
        for event in events:
            profiler.emit(event)
        return len(shipped)

    shipped = benchmark(filtered_volume)
    assert shipped == len(events) // 2
    with open(os.path.join(artifacts, "e2_stream.txt"), "a") as f:
        f.write(f"filter statuses={{done}}: {len(events)} -> {shipped}\n")


def test_e2_min_usec_filter_selectivity(benchmark):
    events = make_events(5_000)

    def volume(min_usec):
        event_filter = EventFilter(min_usec=min_usec)
        return sum(1 for e in events if event_filter.matches(e))

    everything = volume(0)
    costly_only = benchmark(volume, 10_000)
    assert costly_only < everything


def test_e2_multi_server_fanin(benchmark):
    """Two emitters, two connections, merged by clock."""
    events = make_events(500)
    lines = [format_event(e) for e in events]

    def fanin():
        textual = TextualStethoscope()
        conn_a = textual.connect("a")
        conn_b = textual.connect("b")
        emitter_a = UdpEmitter(port=conn_a.port)
        emitter_b = UdpEmitter(port=conn_b.port)
        for line in lines:
            emitter_a.send_line(line)
            emitter_b.send_line(line)
        emitter_a.send_end()
        emitter_b.send_end()
        textual.drain_until_ended(max_rounds=2000, timeout=0.02)
        merged = textual.merged_events()
        emitter_a.close()
        emitter_b.close()
        textual.close()
        return merged

    merged = benchmark(fanin)
    clocks = [e.clock_usec for e in merged]
    assert clocks == sorted(clocks)
