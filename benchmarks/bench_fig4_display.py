"""Experiment F4 — Figure 4: the display window for a simple plan trace.

Regenerates the display-window artefact (the demo query's plan, coloured
by its replayed trace, rendered to SVG and ASCII) and measures the full
offline workflow: dot parse → layout → svg → svg parse → trace replay →
render.
"""

import os

from repro.core.session import Stethoscope
from repro.dot.writer import plan_to_dot
from repro.profiler import Profiler
from repro.tpch import query_sql

DEMO_SQL = query_sql("demo")


def _capture(db):
    profiler = Profiler()
    outcome = db.execute(DEMO_SQL, listener=profiler)
    return plan_to_dot(outcome.program), profiler.events


def test_fig4_offline_session_build(benchmark, tpch_db):
    dot_text, events = _capture(tpch_db)
    session = benchmark(Stethoscope.offline_from_memory, dot_text, events)
    assert session.trace_map.coverage() == 1.0


def test_fig4_full_display_window(benchmark, tpch_db, artifacts):
    dot_text, events = _capture(tpch_db)

    def build_display():
        session = Stethoscope.offline_from_memory(dot_text, events)
        session.replay.run_to_end()
        return session

    session = benchmark(build_display)
    session.save_svg(os.path.join(artifacts, "fig4_display.svg"))
    with open(os.path.join(artifacts, "fig4_display.txt"), "w") as handle:
        handle.write(session.render_ascii(columns=120, rows=40) + "\n")
    assert session.replay.at_end


def test_fig4_ascii_render(benchmark, tpch_db):
    dot_text, events = _capture(tpch_db)
    session = Stethoscope.offline_from_memory(dot_text, events)
    session.replay.run_to_end()
    text = benchmark(session.render_ascii, 120, 40)
    assert "#" in text


def test_fig4_tooltip_lookup(benchmark, tpch_db):
    dot_text, events = _capture(tpch_db)
    session = Stethoscope.offline_from_memory(dot_text, events)
    session.replay.run_to_end()
    nodes = list(session.graph.nodes)

    def tooltips():
        return [session.tooltip(n) for n in nodes]

    texts = benchmark(tooltips)
    assert all(texts)
