"""Experiment F3 — Figure 3: the MAL execution trace.

Regenerates a Figure-3-style trace for the demo query (start/done event
pairs with pc, thread, usec, rss and the statement text) and measures the
profiler's cost: query execution with and without profiling, plus trace
format/parse throughput.
"""

import os

from repro.profiler import Profiler, format_event, parse_event
from repro.tpch import query_sql

DEMO_SQL = query_sql("demo")


def test_fig3_trace_artifact(benchmark, tpch_db, artifacts):
    profiler = Profiler()

    def run():
        profiler.reset()
        return tpch_db.execute(DEMO_SQL, listener=profiler)

    outcome = benchmark(run)
    assert outcome.rows is not None
    lines = [format_event(e) for e in profiler.events]
    with open(os.path.join(artifacts, "fig3_trace.txt"), "w") as handle:
        handle.write("\n".join(lines) + "\n")
    # Figure-3 structure: paired events carrying pc and stmt
    statuses = [e.status for e in profiler.events]
    assert statuses.count("start") == statuses.count("done")
    assert all('"' in line for line in lines)


def test_fig3_execution_without_profiler(benchmark, tpch_db):
    outcome = benchmark(tpch_db.execute, DEMO_SQL)
    assert outcome.kind == "rows"


def test_fig3_event_format_throughput(benchmark, tpch_db):
    profiler = Profiler()
    tpch_db.execute(query_sql("q1"), listener=profiler)
    events = profiler.events

    def format_all():
        return [format_event(e) for e in events]

    lines = benchmark(format_all)
    assert len(lines) == len(events)


def test_fig3_event_parse_throughput(benchmark, tpch_db):
    profiler = Profiler()
    tpch_db.execute(query_sql("q1"), listener=profiler)
    lines = [format_event(e) for e in profiler.events]

    def parse_all():
        return [parse_event(line) for line in lines]

    events = benchmark(parse_all)
    assert events == profiler.events
