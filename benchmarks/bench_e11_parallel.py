"""Experiment E11 — partition-parallel execution on the worker pool.

E4 models multi-core scaling under the virtual clock; this experiment
runs it for real.  A :class:`repro.mal.mpool.PartitionWorkerPool` forks
one process per worker, ships mitosis partitions to them as memoized
BAT bytes, executes the partition fragments remotely, and merges the
results through the plan's own ``mat.pack``.  The bench populates a
TPC-H catalog at 20x the serve default (~12k lineitem rows), races the
in-process interpreter against 2- and 4-worker pools on wall clock, and
records the deterministic modelled makespan speedup of the same
partitioned plan.

What is gated where:

- the *modelled* 4-worker speedup (virtual-clock makespan, identical on
  every machine) must stay >= 2.5x and within tolerance of the
  committed baseline — this is the acceptance number;
- the *measured* wall-clock speedups are printed always but compared
  against the baseline only when both the fresh run and the baseline
  were taken on >= 4 cores (a single-core container cannot show real
  parallel speedup, only fork/ship overhead);
- the invariants are gated unconditionally: serial and pooled runs
  return identical rows, the pool really dispatched remotely
  (``repro_mpool_tasks_total`` advanced), and the pool survives a
  SIGKILLed worker by re-forking and answering the next query.

Running this file standalone (``python benchmarks/bench_e11_parallel.py``)
prints a summary and writes ``e11_parallel_fresh.json`` into
``benchmarks/artifacts/``; ``benchmarks/check_regression.py --only e11``
compares a fresh run against the committed
``benchmarks/BENCH_E11_parallel.json``.
"""

import json
import os
import time

from repro.mal.dataflow import SimulatedScheduler
from repro.metrics.families import MPOOL_TASKS, MPOOL_WORKER_RESTARTS
from repro.server import Database
from repro.storage.catalog import Catalog
from repro.tpch import populate

#: 20x the serve default scale 0.1 — ~12k lineitem rows, enough that
#: every partition clears the pool's ship threshold.
SCALE = 2.0
SEED = 11
NPARTS = 4
POOL_SIZES = (2, 4)
REPEAT = 5

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_E11_parallel.json")

QUERY = ("select sum(l_extendedprice * l_discount) from lineitem "
         "where l_quantity > 10")


def _median_seconds(fn, repeat=REPEAT):
    samples = []
    for _ in range(repeat):
        began = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - began)
    return sorted(samples)[len(samples) // 2]


def _catalog():
    catalog = Catalog()
    populate(catalog, scale_factor=SCALE, seed=SEED)
    return catalog


def run_modelled(catalog):
    """Virtual-clock makespan of the 4-way partitioned plan, 1 vs 4
    workers.  Deterministic: same plan, same cost model, any machine."""
    program = Database(catalog=catalog, workers=NPARTS).compile(QUERY)
    serial = SimulatedScheduler(catalog, workers=1).run(program).total_usec
    parallel = SimulatedScheduler(
        catalog, workers=NPARTS).run(program).total_usec
    return {
        "serial_usec": serial,
        "parallel_usec": parallel,
        "workers": NPARTS,
        "speedup": round(serial / parallel, 2),
    }


def run_measured(catalog):
    """Wall-clock race: in-process interpreter vs the forked pool.

    Also proves the invariants along the way — identical rows, real
    remote dispatch, recovery from a SIGKILLed worker.
    """
    serial_db = Database(catalog=catalog, workers=NPARTS)
    serial_rows = serial_db.execute(QUERY).rows
    serial_s = _median_seconds(lambda: serial_db.execute(QUERY))

    invariants = {
        "results_identical": True,
        "remote_dispatch": False,
        "pool_recovers_after_kill": False,
    }
    per_pool = {}
    for workers in POOL_SIZES:
        db = Database(catalog=catalog, workers=NPARTS,
                      parallel_workers=workers, parallel_min_rows=0)
        try:
            ok_before = MPOOL_TASKS.labels(outcome="ok").value()
            rows = db.execute(QUERY).rows
            if rows != serial_rows:
                invariants["results_identical"] = False
            if MPOOL_TASKS.labels(outcome="ok").value() >= \
                    ok_before + NPARTS:
                invariants["remote_dispatch"] = True
            pool_s = _median_seconds(lambda: db.execute(QUERY))
            per_pool[str(workers)] = {
                "ms": round(pool_s * 1e3, 3),
                "speedup": round(serial_s / pool_s, 2),
            }
            if workers == max(POOL_SIZES):
                # SIGKILL a live worker mid-pool: the next precompute
                # must re-fork it and the query must still agree
                restarts_before = MPOOL_WORKER_RESTARTS.value()
                db.pool._workers[0].process.kill()
                recovered = db.execute(QUERY).rows
                invariants["pool_recovers_after_kill"] = (
                    recovered == serial_rows
                    and db.pool.alive == db.pool.workers
                    and MPOOL_WORKER_RESTARTS.value() > restarts_before)
        finally:
            db.close()
    return {
        "cores": os.cpu_count() or 1,
        "serial_ms": round(serial_s * 1e3, 3),
        "pools": per_pool,
    }, invariants


def run_benchmarks():
    catalog = _catalog()
    modelled = run_modelled(catalog)
    measured, invariants = run_measured(catalog)
    invariants["modelled_speedup_ge_2_5"] = modelled["speedup"] >= 2.5
    return {
        "rows": catalog.table("lineitem").row_count(),
        "modelled": modelled,
        "measured": measured,
        "invariants": invariants,
    }


def check_invariants(results):
    """Yield one failure string per violated invariant."""
    for name, held in sorted(results["invariants"].items()):
        if not held:
            yield f"invariant violated: {name}"


def write_results(results, path):
    with open(path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# pytest entry point (rides the benchmarks/ suite)
# ---------------------------------------------------------------------------


def test_e11_partition_parallel(artifacts):
    results = run_benchmarks()
    write_results(results,
                  os.path.join(artifacts, "e11_parallel_fresh.json"))
    failures = list(check_invariants(results))
    assert not failures, failures
    assert results["modelled"]["speedup"] >= 2.5, (
        f"modelled 4-worker speedup only "
        f"{results['modelled']['speedup']}x")


def main():
    results = run_benchmarks()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    write_results(results,
                  os.path.join(ARTIFACT_DIR, "e11_parallel_fresh.json"))
    modelled = results["modelled"]
    measured = results["measured"]
    print(f"rows={results['rows']} cores={measured['cores']}")
    print(f"modelled  serial={modelled['serial_usec']}usec "
          f"{modelled['workers']}workers={modelled['parallel_usec']}usec "
          f"speedup={modelled['speedup']}x")
    print(f"measured  serial={measured['serial_ms']}ms")
    for workers, result in sorted(measured["pools"].items()):
        print(f"measured  {workers}-worker pool={result['ms']}ms "
              f"speedup={result['speedup']}x")
    for name, held in sorted(results["invariants"].items()):
        print(f"{name:26s} {'ok' if held else 'VIOLATED'}")
    print(f"wrote {os.path.join(ARTIFACT_DIR, 'e11_parallel_fresh.json')}")


if __name__ == "__main__":
    main()
