"""Experiment F2 — Figure 2 and feature 5: large plans (>1000 nodes).

The paper's Figure 2 shows "a large graph for a complex SQL query" and
claims support for graphs of more than 1000 nodes.  This bench sweeps
plan size and measures the full display pipeline (layout, glyph scene,
SVG emission); the artefact records the size→time series.
"""

import os

import pytest

from repro.dot import plan_to_graph
from repro.layout import LayeredLayout
from repro.svg import layout_to_svg
from repro.viz import build_virtual_space
from repro.workloads import synthetic_plan

#: chains * (chain_length + 1) + glue; sizes chosen to bracket 1000
SWEEP = [(8, 4), (40, 4), (80, 4), (170, 4), (340, 4)]


def plan_of(chains, chain_length):
    return synthetic_plan(chains=chains, chain_length=chain_length)


@pytest.mark.parametrize("chains,chain_length", SWEEP,
                         ids=lambda v: str(v))
def test_fig2_layout_scaling(benchmark, chains, chain_length, artifacts):
    graph = plan_to_graph(plan_of(chains, chain_length))
    engine = LayeredLayout()
    layout = benchmark(engine.layout, graph)
    assert len(layout.nodes) == graph.node_count()
    line = (f"nodes={graph.node_count():>5} edges={graph.edge_count():>5} "
            f"crossings={engine.last_crossings}\n")
    with open(os.path.join(artifacts, "fig2_layout_sweep.txt"), "a") as f:
        f.write(line)


def test_fig2_thousand_node_pipeline(benchmark, artifacts):
    """The headline claim: a >1000-node plan through the whole display
    pipeline (layout + glyphs + SVG)."""
    program = plan_of(170, 4)
    graph = plan_to_graph(program)
    assert graph.node_count() > 1000

    def pipeline():
        layout = LayeredLayout().layout(graph)
        space = build_virtual_space(layout)
        return layout, space

    layout, space = benchmark(pipeline)
    svg = layout_to_svg(layout)
    with open(os.path.join(artifacts, "fig2_large_plan.svg"), "w") as f:
        f.write(svg)
    assert len(space) >= 3 * 1000  # shape+text per node plus edges


def test_fig2_dot_parse_scaling(benchmark):
    """Parsing the dot file of a >1000-node plan (workflow stage 1)."""
    from repro.dot import graph_to_dot, parse_dot

    text = graph_to_dot(plan_to_graph(plan_of(170, 4)))
    graph = benchmark(parse_dot, text)
    assert graph.node_count() > 1000


def test_fig2_crossing_minimisation_ablation(benchmark, artifacts):
    """Design-choice ablation: the barycenter sweeps earn their time —
    on a dense random DAG they remove most crossings."""
    import random

    from repro.dot import Digraph

    rng = random.Random(99)
    graph = Digraph()
    layers = [[f"l{layer}_{i}" for i in range(14)] for layer in range(6)]
    for upper, lower in zip(layers, layers[1:]):
        for node in upper:
            for target in rng.sample(lower, 3):
                graph.add_edge(node, target)

    def with_sweeps():
        engine = LayeredLayout(max_sweeps=8)
        engine.layout(graph)
        return engine.last_crossings

    swept = benchmark(with_sweeps)
    no_sweeps_engine = LayeredLayout(max_sweeps=0)
    no_sweeps_engine.layout(graph)
    unswept = no_sweeps_engine.last_crossings
    with open(os.path.join(artifacts, "fig2_layout_sweep.txt"), "a") as f:
        f.write(f"crossing ablation: no_sweeps={unswept} "
                f"8_sweeps={swept}\n")
    assert swept < unswept
