"""Experiment E1 — the §4.2.1 colouring algorithms.

Verifies the paper's worked example as part of the bench and measures
streaming throughput of both algorithms over synthetic traces from 1k to
100k events — the colourizer must comfortably outrun any realistic event
stream, because the render queue (E5), not the algorithm, is the paper's
bottleneck.
"""

import os

import pytest

from repro.core.coloring import (
    PairSequenceColorizer,
    ThresholdColorizer,
    color_buffer,
)
from repro.profiler.events import TraceEvent
from repro.viz.color import RED
from repro.workloads import synthetic_trace


def paper_example():
    pairs = [("start", 1), ("done", 1), ("start", 2), ("done", 2),
             ("start", 3), ("start", 4)]
    return [
        TraceEvent(event=i, clock_usec=i * 10, status=status, pc=pc,
                   thread=0, usec=5 if status == "done" else 0,
                   rss_bytes=0, stmt="X := a.b();")
        for i, (status, pc) in enumerate(pairs)
    ]


def test_e1_paper_worked_example(benchmark):
    events = paper_example()
    actions = benchmark(color_buffer, events)
    assert [(a.pc, a.color) for a in actions] == [(3, RED)]


@pytest.mark.parametrize("events_count", [1_000, 10_000, 100_000])
def test_e1_pair_sequence_throughput(benchmark, events_count, artifacts):
    chains = max(2, events_count // 12)
    events = synthetic_trace(chains=chains, chain_length=4, workers=4)
    events = (events * (events_count // len(events) + 1))[:events_count]

    def stream():
        colorizer = PairSequenceColorizer()
        total = 0
        for event in events:
            total += len(colorizer.push(event))
        return total

    actions = benchmark(stream)
    with open(os.path.join(artifacts, "e1_coloring.txt"), "a") as f:
        f.write(f"pair_sequence events={events_count} actions={actions}\n")


@pytest.mark.parametrize("events_count", [1_000, 100_000])
def test_e1_threshold_throughput(benchmark, events_count):
    events = synthetic_trace(chains=200, chain_length=4, workers=4,
                             long_fraction=0.1)
    events = (events * (events_count // len(events) + 1))[:events_count]

    def stream():
        colorizer = ThresholdColorizer(threshold_usec=1_000)
        total = 0
        for event in events:
            total += len(colorizer.push(event))
        return total

    actions = benchmark(stream)
    assert actions > 0


def test_e1_long_instructions_more_likely_red(benchmark, artifacts):
    """The pair-sequence algorithm detects *overtaken* instructions; in
    a concurrent trace, long instructions are overtaken far more often
    than short ones — P(RED | long) must beat P(RED | short)."""

    def red_rates():
        events = synthetic_trace(chains=100, chain_length=4, workers=4,
                                 long_fraction=0.1, seed=9)
        reds = {a.pc for a in color_buffer(events) if a.color == RED}
        done = [e for e in events if e.status == "done"]
        cutoff = 10_000  # well above the base cost, below long_usec
        long_pcs = {e.pc for e in done if e.usec >= cutoff}
        short_pcs = {e.pc for e in done if e.usec < cutoff}
        p_long = len(reds & long_pcs) / max(len(long_pcs), 1)
        p_short = len(reds & short_pcs) / max(len(short_pcs), 1)
        return p_long, p_short

    p_long, p_short = benchmark(red_rates)
    with open(os.path.join(artifacts, "e1_coloring.txt"), "a") as f:
        f.write(f"P(red|long)={p_long:.2f} P(red|short)={p_short:.2f}\n")
    assert p_long > p_short
    assert p_long > 0.9  # long instructions essentially always flagged
