"""Experiment E12 — durable storage: group commit and crash recovery.

The durable engine write-ahead logs every DDL/INSERT and fsyncs with
group commit: the first committer waits a small window, then one fsync
covers every record that queued behind it.  Checkpoints serialise the
catalog into binary columnar files so recovery replays only the WAL
tail.  These benchmarks measure what that design buys:

- ``group_commit``: concurrent writers against one WAL, batched window
  vs per-record fsync — the batched run must need strictly fewer
  fsyncs than records;
- ``recovery``: rebuild a database from a long WAL, then from a
  checkpoint plus a short tail — both must be byte-identical to the
  state that was acknowledged, and the checkpointed replay must cover
  far fewer records;
- ``checkpoint``: serialise a populated TPC-H catalog and load it back
  byte-identically.

Raw rates are machine-dependent, so the regression gate
(``benchmarks/check_regression.py --only e12``) checks the recorded
*invariants* — batching happened, nothing acknowledged was lost,
round trips are byte-identical — rather than wall-clock numbers.
Running this file standalone prints a summary and writes
``e12_durability_fresh.json`` into ``benchmarks/artifacts/``; the
committed ``benchmarks/BENCH_E12_durability.json`` is the baseline the
gate compares against.
"""

import json
import os
import shutil
import tempfile
import threading
import time

from repro.server.database import Database
from repro.storage import Catalog
from repro.storage.durable import (
    WriteAheadLog,
    catalog_canonical_bytes,
    load_checkpoint,
    recover,
    write_checkpoint,
)
from repro.tpch import populate

WRITERS = 8
RECORDS_PER_WRITER = 50
WAL_RECORDS = 1500
TAIL_RECORDS = 100

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_E12_durability.json")


def _wal_throughput(commit_window_ms, writers=WRITERS,
                    per_writer=RECORDS_PER_WRITER):
    """Concurrent appenders against one WAL; returns records/fsyncs."""
    workdir = tempfile.mkdtemp(prefix="bench-e12-wal-")
    try:
        wal = WriteAheadLog(os.path.join(workdir, "wal.log"),
                            commit_window_ms=commit_window_ms)
        barrier = threading.Barrier(writers)
        failures = []

        def write(i):
            try:
                barrier.wait(timeout=10.0)
                for j in range(per_writer):
                    wal.commit(wal.append(
                        "insert", {"writer": i, "j": j}))
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        threads = [threading.Thread(target=write, args=(i,))
                   for i in range(writers)]
        began = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - began
        records = writers * per_writer
        result = {
            "commit_window_ms": commit_window_ms,
            "writers": writers,
            "records": records,
            "durable_records": wal.synced_records,
            "fsyncs": wal.fsyncs,
            "records_per_fsync": round(records / max(wal.fsyncs, 1), 2),
            "seconds": round(elapsed, 3),
            "records_per_s": round(records / elapsed, 1),
            "failures": failures,
        }
        wal.close()
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_group_commit_benchmark():
    """Batched group commit vs serial per-record fsync, same records.

    The serial run is one writer with a zero window: with nobody to
    batch with, every record costs its own fsync — the baseline group
    commit amortises away.  (A *concurrent* zero-window run still
    batches: the leader adopts whatever queued during its fsync.)
    """
    return {
        "batched": _wal_throughput(commit_window_ms=2.0),
        "per_record": _wal_throughput(
            commit_window_ms=0.0, writers=1,
            per_writer=WRITERS * RECORDS_PER_WRITER),
    }


def run_recovery_benchmark(records=WAL_RECORDS, tail=TAIL_RECORDS):
    """Recovery from a long WAL vs a checkpoint plus a short tail."""
    workdir = tempfile.mkdtemp(prefix="bench-e12-recover-")
    try:
        db = Database(wal_dir=workdir, commit_window_ms=2.0)
        db.execute("create table t (a integer, b varchar(12))")
        for i in range(records - 1):
            db.execute(f"insert into t values ({i}, 'v{i % 97}')")
        acked = catalog_canonical_bytes(db.catalog)
        db.durability.simulate_crash()
        db.close()

        began = time.perf_counter()
        catalog, report = recover(workdir)
        full_seconds = time.perf_counter() - began
        full = {
            "wal_records": report.replayed_records,
            "seconds": round(full_seconds, 3),
            "records_per_s": round(
                report.replayed_records / full_seconds, 1),
            "byte_identical": catalog_canonical_bytes(catalog) == acked,
        }

        # now the same database, checkpointed with only a short tail
        db = Database(wal_dir=workdir, commit_window_ms=2.0)
        db.checkpoint()
        for i in range(tail):
            db.execute(f"insert into t values ({records + i}, 'tail')")
        acked = catalog_canonical_bytes(db.catalog)
        db.durability.simulate_crash()
        db.close()
        began = time.perf_counter()
        catalog, report = recover(workdir)
        tail_seconds = time.perf_counter() - began
        checkpointed = {
            "wal_records": report.replayed_records,
            "checkpoint_rows": report.checkpoint_rows,
            "seconds": round(tail_seconds, 3),
            "byte_identical": catalog_canonical_bytes(catalog) == acked,
        }
        return {"full_replay": full, "checkpointed": checkpointed}
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_checkpoint_benchmark(scale=0.05):
    """Serialise a TPC-H catalog to columnar files; load it back."""
    catalog = Catalog()
    populate(catalog, scale_factor=scale, seed=7)
    workdir = tempfile.mkdtemp(prefix="bench-e12-ckpt-")
    try:
        began = time.perf_counter()
        report = write_checkpoint(catalog, workdir, lsn=1)
        write_seconds = time.perf_counter() - began
        began = time.perf_counter()
        loaded, lsn, rows = load_checkpoint(report.path)
        load_seconds = time.perf_counter() - began
        return {
            "scale": scale,
            "rows": report.rows,
            "files": report.files,
            "bytes": report.bytes,
            "write_seconds": round(write_seconds, 3),
            "load_seconds": round(load_seconds, 3),
            "rows_per_s": round(report.rows / max(write_seconds, 1e-9),
                                1),
            "byte_identical": (catalog_canonical_bytes(loaded)
                               == catalog_canonical_bytes(catalog)),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_benchmarks():
    results = {
        "group_commit": run_group_commit_benchmark(),
        "recovery": run_recovery_benchmark(),
        "checkpoint": run_checkpoint_benchmark(),
    }
    results["invariants"] = invariants(results)
    return results


def invariants(results):
    """The machine-independent facts the regression gate enforces."""
    batched = results["group_commit"]["batched"]
    per_record = results["group_commit"]["per_record"]
    recovery = results["recovery"]
    checkpoint = results["checkpoint"]
    return {
        "all_records_durable": (
            not batched["failures"] and not per_record["failures"]
            and batched["durable_records"] == batched["records"]
            and per_record["durable_records"] == per_record["records"]),
        "group_commit_batches": batched["fsyncs"] < batched["records"],
        "per_record_fsync_floor": (per_record["fsyncs"]
                                   >= per_record["records"]),
        "full_replay_byte_identical": (
            recovery["full_replay"]["byte_identical"]),
        "checkpointed_byte_identical": (
            recovery["checkpointed"]["byte_identical"]),
        "checkpoint_shortens_replay": (
            recovery["checkpointed"]["wal_records"]
            < recovery["full_replay"]["wal_records"]),
        "checkpoint_round_trip_identical": checkpoint["byte_identical"],
    }


def check_invariants(results):
    """Failure strings for every violated invariant (empty = pass)."""
    return [f"invariant violated: {name}"
            for name, held in results["invariants"].items() if not held]


def write_results(results, path):
    with open(path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# pytest entry point (rides the benchmarks/ suite)
# ---------------------------------------------------------------------------


def test_e12_durability(artifacts):
    results = run_benchmarks()
    write_results(results,
                  os.path.join(artifacts, "e12_durability_fresh.json"))
    failures = check_invariants(results)
    assert not failures, "; ".join(failures)


def main():
    results = run_benchmarks()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    write_results(results,
                  os.path.join(ARTIFACT_DIR,
                               "e12_durability_fresh.json"))
    batched = results["group_commit"]["batched"]
    per_record = results["group_commit"]["per_record"]
    recovery = results["recovery"]
    checkpoint = results["checkpoint"]
    print(f"group commit  {batched['records']} records in "
          f"{batched['fsyncs']} fsyncs "
          f"({batched['records_per_fsync']} rec/fsync, "
          f"{batched['records_per_s']} rec/s) vs per-record "
          f"{per_record['fsyncs']} fsyncs "
          f"({per_record['records_per_s']} rec/s)")
    print(f"recovery      full replay "
          f"{recovery['full_replay']['wal_records']} records in "
          f"{recovery['full_replay']['seconds']}s; checkpointed "
          f"{recovery['checkpointed']['wal_records']} records + "
          f"{recovery['checkpointed']['checkpoint_rows']} rows in "
          f"{recovery['checkpointed']['seconds']}s")
    print(f"checkpoint    {checkpoint['rows']} rows -> "
          f"{checkpoint['files']} files, {checkpoint['bytes']} bytes "
          f"in {checkpoint['write_seconds']}s")
    for name, held in sorted(results["invariants"].items()):
        print(f"invariant     {name}: {'ok' if held else 'VIOLATED'}")
    print(f"wrote "
          f"{os.path.join(ARTIFACT_DIR, 'e12_durability_fresh.json')}")
    return 0 if not check_invariants(results) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
