"""Experiment F1 — Figure 1: the MAL plan of the paper's demo query.

Regenerates the artefact (the plan text for ``select l_tax from lineitem
where l_partkey = 1``) and measures SQL→algebra→MAL compilation plus
optimizer pipeline time, which bounds how quickly a plan can be handed to
the Stethoscope.
"""

import os

from repro.mal.printer import format_program
from repro.tpch import query_sql

DEMO_SQL = query_sql("demo")


def test_fig1_compile_demo_query(benchmark, tpch_db_small, artifacts):
    program = benchmark(tpch_db_small.compile, DEMO_SQL)
    text = format_program(program)
    with open(os.path.join(artifacts, "fig1_mal_plan.txt"), "w") as handle:
        handle.write(text + "\n")
    # the artefact must show the Figure-1 essentials
    assert "sql.bind" in text and "algebra.select" in text
    assert "l_partkey" in text and "l_tax" in text
    assert text.startswith("function user.")


def test_fig1_compile_unoptimized(benchmark, tpch_db_small):
    compiler = tpch_db_small.compiler
    program = benchmark(compiler.compile_text, DEMO_SQL)
    assert len(program) > 5


def test_fig1_plan_print_roundtrip(benchmark, tpch_db_small):
    from repro.mal.parser import parse_program

    program = tpch_db_small.compile(DEMO_SQL)
    text = format_program(program)

    def roundtrip():
        return parse_program(text)

    again = benchmark(roundtrip)
    assert len(again) == len(program)
