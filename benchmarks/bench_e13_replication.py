"""Experiment E13 — replication: lag under write load and failover.

A primary streams its committed WAL to a pulling replica (checkpoint
bootstrap for late joiners, epoch-fenced sessions).  These benchmarks
measure the two numbers an operator actually watches:

- ``lag``: the E12-style concurrent write workload runs against the
  primary while the replica pulls; replication lag (records) is
  sampled throughout, and once the load stops we time how long the
  replica takes to drain to zero — the replica must finish
  byte-identical (``catalog_canonical_bytes``) to the primary;
- ``failover``: the primary is SIGKILL-shaped mid-write-load
  (truncated to its durable watermark, exactly like crash recovery),
  the replica is promoted, and we time from the kill to the first
  served read on the new primary.  The promoted state must be a clean
  acked prefix of what the old primary acknowledged, the epoch must
  bump, and a write must land on the new primary.

Raw rates and times are machine-dependent, so the regression gate
(``benchmarks/check_regression.py --only e13``) checks the recorded
*invariants* — byte-identity, lag drained, clean prefix, epoch
fencing — rather than wall-clock numbers.  Running this file
standalone prints a summary and writes a fresh-run artifact
(``e13_replication_fresh.json``) into ``benchmarks/artifacts/``; the
committed ``benchmarks/BENCH_E13_replication.json`` is the one
canonical baseline the gate compares against — the fresh artifact
deliberately uses a different name so the baseline never exists in two
places.
"""

import json
import os
import shutil
import tempfile
import threading
import time

from repro.errors import ReproError
from repro.replication import ReplicationManager
from repro.server.client import MClient
from repro.server.database import Database
from repro.server.mserver import Mserver
from repro.storage.durable import catalog_canonical_bytes, recover

WRITERS = 4
RECORDS_PER_WRITER = 75

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_E13_replication.json")


def _node(workdir, name, primary=None):
    db = Database(wal_dir=os.path.join(workdir, name),
                  commit_window_ms=2.0 if primary is None else 0.0)
    server = Mserver(db).start()
    addr = f"127.0.0.1:{server.port}"
    mgr = ReplicationManager(server, addr=addr, primary=primary,
                             poll_interval_s=0.01, auto_failover=False)
    server.replication = mgr.start()
    return db, server, mgr, addr


def _write_load(port, writers=WRITERS, per_writer=RECORDS_PER_WRITER):
    """E12-shaped concurrent insert workload; returns acked SQL in
    acknowledgement order plus throughput numbers."""
    acked = []
    lock = threading.Lock()
    failures = []
    barrier = threading.Barrier(writers)

    def write(i):
        try:
            with MClient(port=port, retries=0) as client:
                barrier.wait(timeout=10.0)
                for j in range(per_writer):
                    sql = (f"insert into t values "
                           f"({i * 100000 + j}, 'w{i}')")
                    client.query(sql)
                    with lock:
                        acked.append(sql)
        except Exception as exc:  # pragma: no cover
            failures.append(repr(exc))

    threads = [threading.Thread(target=write, args=(i,))
               for i in range(writers)]
    began = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - began
    return acked, elapsed, failures


def run_lag_benchmark():
    """Replication lag under concurrent write load, then drain time."""
    workdir = tempfile.mkdtemp(prefix="bench-e13-lag-")
    servers = []
    try:
        pdb, pserver, _pmgr, paddr = _node(workdir, "primary")
        servers.append(pserver)
        with MClient(port=pserver.port) as client:
            client.query("create table t (a integer, b varchar(8))")
        rdb, rserver, rmgr, _raddr = _node(workdir, "replica",
                                           primary=paddr)
        servers.append(rserver)

        lag_samples = []
        stop_sampling = threading.Event()

        def sample():
            while not stop_sampling.is_set():
                lag_samples.append(rmgr.status()["lag_records"])
                time.sleep(0.005)

        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        acked, load_seconds, failures = _write_load(pserver.port)
        drain_began = time.perf_counter()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if rdb.durability.wal.durable_lsn \
                    >= pdb.durability.wal.durable_lsn:
                break
            time.sleep(0.002)
        drain_seconds = time.perf_counter() - drain_began
        stop_sampling.set()
        sampler.join(timeout=5.0)

        records = len(acked)
        return {
            "writers": WRITERS,
            "records": records,
            "load_seconds": round(load_seconds, 3),
            "records_per_s": round(records / max(load_seconds, 1e-9), 1),
            "max_lag_records": max(lag_samples or [0]),
            "drain_seconds": round(drain_seconds, 3),
            "final_lag_records": rmgr.status()["lag_records"],
            "byte_identical": (catalog_canonical_bytes(rdb.catalog)
                               == catalog_canonical_bytes(pdb.catalog)),
            "failures": failures,
        }
    finally:
        for server in reversed(servers):
            server.stop()
        shutil.rmtree(workdir, ignore_errors=True)


def run_failover_benchmark():
    """Kill the primary mid-write-load; time-to-first-served-read on
    the promoted replica."""
    workdir = tempfile.mkdtemp(prefix="bench-e13-failover-")
    servers = []
    try:
        pdb, pserver, _pmgr, paddr = _node(workdir, "primary")
        servers.append(pserver)
        with MClient(port=pserver.port) as client:
            client.query("create table t (a integer, b varchar(8))")
        rdb, rserver, _rmgr, _raddr = _node(workdir, "replica",
                                            primary=paddr)
        servers.append(rserver)

        acked, _seconds, failures = _write_load(pserver.port)
        # wait until the replica has something, then kill mid-stream
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and \
                rdb.durability.wal.durable_lsn == 0:
            time.sleep(0.002)

        old_epoch = pdb.durability.epoch
        kill_began = time.perf_counter()
        pdb.durability.simulate_crash()
        pserver.stop()
        servers.remove(pserver)

        with MClient(port=rserver.port, retries=0) as client:
            promoted = client.promote()
            promote_seconds = time.perf_counter() - kill_began
            first_read = None
            read_deadline = time.monotonic() + 10.0
            while time.monotonic() < read_deadline:
                try:
                    client.query("select count(*) from t")
                    first_read = time.perf_counter() - kill_began
                    break
                except ReproError:
                    time.sleep(0.002)
            client.query("insert into t values (999999, 'post')")

        # the promoted state (minus the sentinel post-failover row)
        # must be a clean prefix of the dead primary's durable history
        # — recover its WAL directory post-mortem as the witness.
        # Both sides apply records in LSN order, so the replica's rows
        # must be exactly the first N of the old primary's rows.
        old_catalog, _report = recover(os.path.join(workdir, "primary"))
        old_table = old_catalog.schema("sys").table("t")
        old_rows = list(zip(old_table.columns["a"].bat.tail,
                            old_table.columns["b"].bat.tail))
        table = rdb.catalog.schema("sys").table("t")
        rows = [row for row in zip(table.columns["a"].bat.tail,
                                   table.columns["b"].bat.tail)
                if row != (999999, "post")]
        clean_prefix = rows == old_rows[:len(rows)]

        return {
            "records": len(acked),
            "promote_seconds": round(promote_seconds, 3),
            "first_read_seconds": (None if first_read is None
                                   else round(first_read, 3)),
            "promoted": bool(promoted.get("promoted")),
            "old_epoch": old_epoch,
            "new_epoch": int(promoted.get("epoch", 0)),
            "dropped_records": int(promoted.get("dropped_records", 0)),
            "clean_prefix": clean_prefix,
            "failures": failures,
        }
    finally:
        for server in reversed(servers):
            server.stop()
        shutil.rmtree(workdir, ignore_errors=True)


def run_benchmarks():
    results = {
        "lag": run_lag_benchmark(),
        "failover": run_failover_benchmark(),
    }
    results["invariants"] = invariants(results)
    return results


def invariants(results):
    """The machine-independent facts the regression gate enforces."""
    lag = results["lag"]
    failover = results["failover"]
    return {
        "all_writes_acked": (not lag["failures"]
                             and not failover["failures"]
                             and lag["records"]
                             == WRITERS * RECORDS_PER_WRITER),
        "lag_drains_to_zero": lag["final_lag_records"] == 0,
        "replica_byte_identical": lag["byte_identical"],
        "failover_promoted": failover["promoted"],
        "failover_epoch_bumped": (failover["new_epoch"]
                                  > failover["old_epoch"]),
        "failover_serves_reads": (failover["first_read_seconds"]
                                  is not None),
        "failover_clean_acked_prefix": failover["clean_prefix"],
    }


def check_invariants(results):
    """Failure strings for every violated invariant (empty = pass)."""
    return [f"invariant violated: {name}"
            for name, held in results["invariants"].items() if not held]


def write_results(results, path):
    with open(path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# pytest entry point (rides the benchmarks/ suite)
# ---------------------------------------------------------------------------


def test_e13_replication(artifacts):
    results = run_benchmarks()
    write_results(results,
                  os.path.join(artifacts, "e13_replication_fresh.json"))
    failures = check_invariants(results)
    assert not failures, "; ".join(failures)


def main():
    results = run_benchmarks()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    write_results(results,
                  os.path.join(ARTIFACT_DIR,
                               "e13_replication_fresh.json"))
    lag = results["lag"]
    failover = results["failover"]
    print(f"lag           {lag['records']} records at "
          f"{lag['records_per_s']} rec/s; max lag "
          f"{lag['max_lag_records']} records, drained in "
          f"{lag['drain_seconds']}s")
    print(f"failover      promote {failover['promote_seconds']}s, "
          f"first served read {failover['first_read_seconds']}s, "
          f"epoch {failover['old_epoch']} -> {failover['new_epoch']}, "
          f"dropped {failover['dropped_records']} unacked")
    for name, held in sorted(results["invariants"].items()):
        print(f"invariant     {name}: {'ok' if held else 'VIOLATED'}")
    print(f"wrote "
          f"{os.path.join(ARTIFACT_DIR, 'e13_replication_fresh.json')}")
    return 0 if not check_invariants(results) else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
