"""Experiment E14 — adaptive optimization: feedback beats syntax.

A skewed-selectivity workload where the syntactic predicate order is
maximally wrong: the query lists a ~90%-pass predicate first and a
~1%-pass predicate second, so a static compile filters almost nothing
with its first (most expensive) chain link.  After one warm-up
execution the stats store has the observed selectivities, and the
``adaptive_order`` optimizer pass recompiles the chain
most-selective-first.

The gated number is the *modelled* (virtual-clock, deterministic)
median latency ratio of static vs warm-adaptive compiles — like E11's
modelled speedup it is machine-independent, so the regression gate
(``benchmarks/check_regression.py --only e14``) can require the full
ratio rather than an invariant.  Invariants gated alongside it:

- rows byte-identical between the static and adaptive plans (the
  reorder is an optimization, never a semantics change);
- the adaptive warm plan actually differs from the static plan (the
  feedback loop engaged);
- the stats store round-trips through its CRC-trailed snapshot.

Running this file standalone prints a summary and writes a fresh-run
artifact into ``benchmarks/artifacts/``; the committed
``benchmarks/BENCH_E14_adaptive.json`` is the baseline.
"""

import json
import os
import random
import statistics
import tempfile
import time

from repro.mal.printer import format_program
from repro.server.database import Database
from repro.stats import StatsStore

ROWS = 40_000
REPEATS = 5
#: predicate order in the SQL is deliberately pessimal: ``a < 900``
#: passes ~90% of rows, ``b = 7`` passes ~1%
QUERY = "select a, b from t where a < 900 and b = 7"
REQUIRED_SPEEDUP = 1.5

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_E14_adaptive.json")


def _plan_text(program):
    """The formatted plan with its per-compile name normalized away
    (each compile gets a fresh ``user.sN_M`` name; plan *shape* is what
    the invariants compare)."""
    short = program.name.split(".")[-1]
    return format_program(program).replace(program.name, "user.q") \
                                  .replace(short, "q")


def _build_database(pipeline_name):
    """A database holding the skewed table, compiled per-call (no plan
    cache) so every execution pays — and shows — its compile choices."""
    db = Database(workers=2, pipeline_name=pipeline_name,
                  plan_cache_size=0)
    db.execute("create table t (a int, b int)")
    rng = random.Random(20260808)
    table = db.catalog.table("t")
    table.insert_many(
        [[rng.randrange(1000), rng.randrange(100)] for _ in range(ROWS)])
    db.catalog.invalidate()
    return db


def _run_queries(db, repeats=REPEATS):
    """(median modelled usec, median wall seconds, last outcome)."""
    modelled = []
    walls = []
    outcome = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcome = db.execute(QUERY)
        walls.append(time.perf_counter() - start)
        modelled.append(outcome.execution.total_usec)
    return (statistics.median(modelled), statistics.median(walls),
            outcome)


def _snapshot_roundtrip(store):
    """Save + load the store; True when the reloaded copy answers the
    same selectivities (the CRC-trailed snapshot is faithful)."""
    with tempfile.TemporaryDirectory(prefix="repro-e14-") as workdir:
        path = os.path.join(workdir, "stats.json")
        store.save(path)
        reloaded = StatsStore.load(path)
        return reloaded.snapshot() == store.snapshot()


def run_benchmarks():
    static_db = _build_database("static_pipe")
    adaptive_db = _build_database("default_pipe")

    static_usec, static_wall, static_outcome = _run_queries(static_db)
    static_plan = _plan_text(static_outcome.program)

    # warm-up: the first execution both runs the (still syntactic) plan
    # and feeds the stats store; the next compile reorders
    adaptive_db.execute(QUERY)
    cold_plan = _plan_text(adaptive_db.last_program)
    warm_usec, warm_wall, warm_outcome = _run_queries(adaptive_db)
    warm_plan = _plan_text(warm_outcome.program)

    store = adaptive_db.stats_store
    results = {
        "workload": {
            "rows": ROWS,
            "query": QUERY,
            "repeats": REPEATS,
        },
        "modelled": {
            "static_usec": static_usec,
            "warm_adaptive_usec": warm_usec,
            "speedup": round(static_usec / warm_usec, 3),
        },
        "measured": {
            "static_wall_s": round(static_wall, 6),
            "warm_adaptive_wall_s": round(warm_wall, 6),
            "speedup": round(static_wall / warm_wall, 3),
        },
        "stats_store": store.summary(),
        "plans": {
            "cold_matches_static": cold_plan == static_plan,
            "warm_differs_from_static": warm_plan != static_plan,
        },
        "rows_returned": len(warm_outcome.rows),
    }
    results["invariants"] = invariants(
        results,
        rows_identical=(static_outcome.rows == warm_outcome.rows),
        snapshot_ok=_snapshot_roundtrip(store))
    static_db.close()
    adaptive_db.close()
    return results


def invariants(results, rows_identical, snapshot_ok):
    """The machine-independent facts the regression gate enforces."""
    return {
        "rows_byte_identical": rows_identical,
        "cold_plan_matches_static": results["plans"]
        ["cold_matches_static"],
        "adaptive_plan_reordered": results["plans"]
        ["warm_differs_from_static"],
        "stats_snapshot_roundtrips": snapshot_ok,
        "modelled_speedup_met": (results["modelled"]["speedup"]
                                 >= REQUIRED_SPEEDUP),
    }


def check_invariants(results):
    """Failure strings for every violated invariant (empty = pass)."""
    return [f"invariant violated: {name}"
            for name, held in results["invariants"].items() if not held]


def write_results(results, path):
    with open(path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# pytest entry point (rides the benchmarks/ suite)
# ---------------------------------------------------------------------------


def test_e14_adaptive(artifacts):
    results = run_benchmarks()
    write_results(results,
                  os.path.join(artifacts, "e14_adaptive_fresh.json"))
    failures = check_invariants(results)
    assert not failures, "; ".join(failures)


def main():
    results = run_benchmarks()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    write_results(results,
                  os.path.join(ARTIFACT_DIR, "e14_adaptive_fresh.json"))
    modelled = results["modelled"]
    measured = results["measured"]
    print(f"modelled      static {modelled['static_usec']}us, warm "
          f"adaptive {modelled['warm_adaptive_usec']}us -> "
          f"{modelled['speedup']}x")
    print(f"measured      static {measured['static_wall_s']}s, warm "
          f"adaptive {measured['warm_adaptive_wall_s']}s -> "
          f"{measured['speedup']}x")
    print(f"rows          {results['rows_returned']} returned, "
          f"byte-identical: "
          f"{results['invariants']['rows_byte_identical']}")
    for name, held in sorted(results["invariants"].items()):
        print(f"{name:32s} {'ok' if held else 'VIOLATED'}")
    failures = check_invariants(results)
    if failures:
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
