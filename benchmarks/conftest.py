"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one of the paper's figures or demonstrated
claims (see DESIGN.md's experiment index) and writes its artefact into
``benchmarks/artifacts/``.
"""

import os

import pytest

from repro.server import Database
from repro.tpch import populate

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


@pytest.fixture(scope="session")
def artifacts():
    """Directory where benchmark artefacts (plans, traces, SVGs) land."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture(scope="session")
def tpch_db():
    """A populated TPC-H database with parallelism enabled."""
    db = Database(workers=4, mitosis_threshold=400)
    populate(db.catalog, scale_factor=0.2, seed=7)
    return db


@pytest.fixture(scope="session")
def tpch_db_small():
    """A small TPC-H database for compile-bound benchmarks."""
    db = Database(workers=4, mitosis_threshold=400)
    populate(db.catalog, scale_factor=0.05, seed=7)
    return db
