"""Experiment E8 — disarmed fault-site overhead.

The fault-injection sites (``repro.faults``) sit on three hot paths:
``UdpEmitter.send_line``, the Mserver response loop, and both dataflow
schedulers' dispatch step.  Disarmed (no plan active), each site is one
module-attribute load plus an identity test (``ACTIVE.plan is None``).
These benchmarks bound that cost: the same workload with the sites
present (the shipped code) versus an armed-but-empty plan (every
dispatch additionally pays a full ``decide()`` that matches no rule),
plus the raw guard cost measured in isolation.

Acceptance target (ISSUE): < 2% interpreter overhead with no plan
armed.  Disarmed *is* the shipped hot path, so the headline number
compares scheduler runs against the E7-style uninstrumented baseline
the guard rides on; the armed-empty variant shows the price of leaving
a plan armed with no matching rules.
"""

import os
import time

from repro.faults import ACTIVE, FaultPlan, armed
from repro.profiler import UdpEmitter, format_event
from repro.tpch import query_sql
from repro.workloads import synthetic_trace

QUERY = query_sql("q6")


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _compare(run_a, run_b, repeat=9, inner=10):
    """Median seconds-per-call for both variants, sampled interleaved
    (a, b, a, b, ...) so drifting machine load hits both equally."""
    a_samples, b_samples = [], []
    for _ in range(repeat):
        for run, samples in ((run_a, a_samples), (run_b, b_samples)):
            began = time.perf_counter()
            for _ in range(inner):
                run()
            samples.append((time.perf_counter() - began) / inner)
    return _median(a_samples), _median(b_samples)


def test_e8_guard_cost_isolated(benchmark, artifacts):
    """The raw disarmed check, measured in a tight loop: what every
    fault site pays per pass when no plan is armed."""
    holder = ACTIVE
    loops = 100_000

    def spin_guarded():
        for _ in range(loops):
            if holder.plan is not None:  # pragma: no cover
                raise AssertionError

    def spin_bare():
        for _ in range(loops):
            pass

    bare, guarded = _compare(spin_bare, spin_guarded, inner=3)
    per_check_ns = (guarded - bare) / loops * 1e9

    benchmark(spin_guarded)
    with open(os.path.join(artifacts, "e8_faults.txt"), "a") as f:
        f.write(f"guard ({loops} checks): bare={bare * 1e3:.2f}ms "
                f"guarded={guarded * 1e3:.2f}ms "
                f"added={per_check_ns:.1f}ns/check\n")
    # one attribute load + identity test; anything near a microsecond
    # would mean the guard grew real work
    assert per_check_ns < 1000.0, (
        f"disarmed guard costs {per_check_ns:.0f}ns/check"
    )


def test_e8_scheduler_disarmed_overhead(benchmark, tpch_db_small,
                                        artifacts):
    """Full Q6 dataflow runs: disarmed sites (the shipped path) versus
    an armed plan whose only rule never matches the exercised sites'
    actions — the worst case an operator pays for *leaving* chaos armed.
    The disarmed-vs-armed gap brackets the sites' total cost; the
    acceptance bound applies to the disarmed side."""
    # a rule on server.loop only: scheduler/udp sites take the full
    # decide() path and find no rule for themselves
    idle_plan = FaultPlan(seed=0).on("server.loop", "latency",
                                     value=0, probability=0.0)

    def run_disarmed():
        tpch_db_small.execute(QUERY)

    def run_armed_idle():
        with armed(idle_plan):
            tpch_db_small.execute(QUERY)

    disarmed, armed_idle = _compare(run_disarmed, run_armed_idle,
                                    inner=5)
    armed_overhead = armed_idle / disarmed - 1.0

    benchmark(run_disarmed)
    with open(os.path.join(artifacts, "e8_faults.txt"), "a") as f:
        f.write(f"dataflow q6: disarmed={disarmed * 1e3:.2f}ms "
                f"armed-idle={armed_idle * 1e3:.2f}ms "
                f"armed overhead={armed_overhead:+.2%}\n")
    # even fully armed with a never-matching plan the dispatch loop
    # should stay cheap; generous bound for timer noise in CI
    assert armed_idle < disarmed * 1.25, (
        f"armed-idle overhead {armed_overhead:.1%}"
    )


def test_e8_interpreter_disarmed_bound(tpch_db_small, artifacts):
    """The ISSUE's acceptance number: disarmed sites must cost the
    interpreter hot path < 2%.  The sequential ``Interpreter`` carries
    no fault site at all, so its cost is exactly zero by construction —
    the measurable proxy is the per-site guard cost against the
    ~usec-scale per-instruction dispatch it would ride on."""
    from repro.mal.interpreter import Interpreter

    program = tpch_db_small.compile(QUERY)
    interp = Interpreter(tpch_db_small.catalog)

    began = time.perf_counter()
    runs = 5
    for _ in range(runs):
        interp.run(program)
    per_run_s = (time.perf_counter() - began) / runs
    per_instruction_us = per_run_s / max(len(program.instructions), 1) * 1e6

    holder = ACTIVE
    loops = 200_000
    began = time.perf_counter()
    for _ in range(loops):
        if holder.plan is not None:  # pragma: no cover
            raise AssertionError
    guard_us = (time.perf_counter() - began) / loops * 1e6

    share = guard_us / per_instruction_us
    with open(os.path.join(artifacts, "e8_faults.txt"), "a") as f:
        f.write(f"interpreter q6: {per_instruction_us:.2f}us/instr, "
                f"guard {guard_us * 1e3:.1f}ns "
                f"= {share:.3%} of an instruction\n")
    assert share < 0.02, (
        f"disarmed guard is {share:.2%} of one instruction dispatch"
    )


def test_e8_udp_disarmed_overhead(benchmark, artifacts):
    """The emitter's per-line guard: ship a synthetic trace with no
    plan armed and with an armed plan holding only a never-firing
    udp rule (probability 0 — every line pays a PRNG draw)."""
    events = synthetic_trace(chains=40, chain_length=6)
    lines = [format_event(e) for e in events]
    idle_plan = FaultPlan(seed=0).on("udp.emit", "drop", probability=0.0)

    def ship_disarmed():
        emitter = UdpEmitter(port=40998)  # no receiver: pure send path
        for line in lines:
            emitter.send_line(line)
        emitter.close()

    def ship_armed_idle():
        with armed(idle_plan):
            ship_disarmed()

    disarmed, armed_idle = _compare(ship_disarmed, ship_armed_idle,
                                    inner=3)
    added_usec = (armed_idle - disarmed) / len(lines) * 1e6

    benchmark(ship_disarmed)
    with open(os.path.join(artifacts, "e8_faults.txt"), "a") as f:
        f.write(f"udp stream ({len(lines)} lines): "
                f"disarmed={disarmed * 1e3:.3f}ms "
                f"armed-idle={armed_idle * 1e3:.3f}ms "
                f"added={added_usec:.3f}us/line\n")
    # a never-firing armed rule pays one PRNG draw per line; that must
    # stay far below the ~20us a datagram costs end to end
    assert added_usec < 10.0, (
        f"armed-idle udp path adds {added_usec:.2f}us/line"
    )
