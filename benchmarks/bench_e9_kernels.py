"""Experiment E9 — bulk kernel and plan-cache speedups.

The storage engine's hot BAT kernels were rewritten around batch
primitives (fused comprehensions, operator tables, memoized head
indexes); the per-row originals are preserved verbatim in
``repro.storage.naive`` as the reference implementation.  These
benchmarks race the two on identical 100k-row inputs and also measure
the SQL→MAL plan cache (cold parse+optimize versus a warm hit).

Acceptance targets (ISSUE E9):

- >= 3x on the 100k-row select -> fetchjoin -> group -> aggregate
  pipeline versus the pre-PR kernels;
- warm plan-cache ``compile`` >= 10x faster than a cold compile.

The results are the repo's first machine-readable perf baseline:
running this file standalone (``python benchmarks/bench_e9_kernels.py``)
prints a summary and writes ``e9_kernels_fresh.json`` into
``benchmarks/artifacts/``; ``benchmarks/check_regression.py`` compares
a fresh run against the committed ``benchmarks/BENCH_E9_kernels.json``
and fails on a >25% regression of any kernel.
"""

import json
import os
import random
import time

from repro.server import Database
from repro.storage import naive
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog
from repro.storage.types import INT, OID

ROWS = 100_000
NGROUPS = 32

ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_E9_kernels.json")

PLAN_CACHE_QUERY = (
    "select l_returnflag, sum(l_extendedprice), count(*) from lineitem "
    "where l_quantity < 24 group by l_returnflag order by l_returnflag"
)


def _median_seconds(fn, repeat=5):
    samples = []
    for _ in range(repeat):
        began = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - began)
    return sorted(samples)[len(samples) // 2]


def _race(fast_fn, naive_fn, repeat=9):
    """Interleaved medians so drifting machine load hits both sides."""
    fast_samples, naive_samples = [], []
    for _ in range(repeat):
        began = time.perf_counter()
        fast_fn()
        fast_samples.append(time.perf_counter() - began)
        began = time.perf_counter()
        naive_fn()
        naive_samples.append(time.perf_counter() - began)
    fast = sorted(fast_samples)[repeat // 2]
    slow = sorted(naive_samples)[repeat // 2]
    return {
        "new_ms": round(fast * 1e3, 3),
        "naive_ms": round(slow * 1e3, 3),
        "speedup": round(slow / fast, 2),
    }


def _dataset(rows=ROWS, seed=7):
    rng = random.Random(seed)
    measure = BAT(INT, [rng.randrange(0, 1000) for _ in range(rows)])
    grp = BAT(INT, [rng.randrange(0, NGROUPS) for _ in range(rows)])
    return measure, grp


def _pipeline(select, leftfetchjoin, group, grouped_aggregate,
              measure, grp):
    """select -> fetchjoin -> group -> aggregate over 100k rows.

    The candidate list is chained exactly as the SQL compiler emits it:
    ``bat.mirror`` over the selection result (identical glue on both
    sides), so the race isolates kernel cost.
    """
    qualifying = select(measure, 100, 299)
    keys = qualifying.mirror()
    dims = leftfetchjoin(keys, grp)
    vals = leftfetchjoin(keys, measure)
    groups, _, hist = group(dims)
    return grouped_aggregate(vals, groups, len(hist.tail), "sum")


def run_kernel_benchmarks(rows=ROWS):
    measure, grp = _dataset(rows)
    keys = BAT(OID, list(range(0, rows, 2)))
    hashed = BAT(INT, list(measure.tail),
                 head=list(range(rows)))  # non-void head: index path

    kernels = {
        # wide range: the order index declines, the fused scan answers
        "select_scan": _race(
            lambda: measure.select(100, 899),
            lambda: naive.select(measure, 100, 899)),
        # selective range: answered by bisecting the memoized order index
        "select_indexed": _race(
            lambda: measure.select(100, 299),
            lambda: naive.select(measure, 100, 299)),
        "thetaselect": _race(
            lambda: measure.thetaselect(500, "<"),
            lambda: naive.thetaselect(measure, 500, "<")),
        "leftfetchjoin_void": _race(
            lambda: keys.leftfetchjoin(measure),
            lambda: naive.leftfetchjoin(keys, measure)),
        "leftjoin_hash": _race(
            lambda: keys.leftjoin(hashed),
            lambda: naive.leftjoin(keys, hashed)),
        "group": _race(
            lambda: grp.group(),
            lambda: naive.group(grp)),
        "grouped_aggregate": None,  # filled below (needs group output)
        "sort": _race(
            lambda: measure.sort(),
            lambda: naive.sort(measure)),
        "calc_const": _race(
            lambda: measure.calc_const(3, "*"),
            lambda: naive.calc_const(measure, 3, "*")),
    }
    groups = grp.group()[0]
    kernels["grouped_aggregate"] = _race(
        lambda: measure.grouped_aggregate(groups, NGROUPS, "sum"),
        lambda: naive.grouped_aggregate(measure, groups, NGROUPS, "sum"))

    kernels["pipeline"] = _race(
        lambda: _pipeline(BAT.select, BAT.leftfetchjoin, BAT.group,
                          BAT.grouped_aggregate, measure, grp),
        lambda: _pipeline(naive.select, naive.leftfetchjoin, naive.group,
                          naive.grouped_aggregate, measure, grp),
        repeat=3)
    return kernels


def run_plan_cache_benchmark():
    from repro.tpch import populate

    db = Database(Catalog(), workers=2)
    populate(db.catalog, scale_factor=0.01, seed=7)

    def cold():
        db.plan_cache.clear()
        db.compile(PLAN_CACHE_QUERY)

    cold_s = _median_seconds(cold, repeat=9)
    db.compile(PLAN_CACHE_QUERY)  # prime

    def warm():
        for _ in range(100):
            db.compile(PLAN_CACHE_QUERY)

    warm_s = _median_seconds(warm, repeat=9) / 100
    return {
        "cold_ms": round(cold_s * 1e3, 3),
        "warm_us": round(warm_s * 1e6, 2),
        "speedup": round(cold_s / warm_s, 1),
    }


def run_benchmarks(rows=ROWS):
    return {
        "rows": rows,
        "kernels": run_kernel_benchmarks(rows),
        "plan_cache": run_plan_cache_benchmark(),
    }


def write_results(results, path):
    with open(path, "w") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# pytest entry points (ride the benchmarks/ suite)
# ---------------------------------------------------------------------------


def test_e9_pipeline_speedup(artifacts):
    results = run_benchmarks()
    write_results(results,
                  os.path.join(artifacts, "e9_kernels_fresh.json"))
    pipeline = results["kernels"]["pipeline"]
    assert pipeline["speedup"] >= 3.0, (
        f"pipeline only {pipeline['speedup']}x over naive kernels")
    # every racing kernel must at least not lose to its reference
    for name, result in results["kernels"].items():
        assert result["speedup"] >= 1.0, (
            f"{name} slower than naive: {result}")


def test_e9_plan_cache_speedup(artifacts):
    result = run_plan_cache_benchmark()
    with open(os.path.join(artifacts, "e9_plan_cache.txt"), "w") as f:
        f.write(f"cold={result['cold_ms']}ms warm={result['warm_us']}us "
                f"speedup={result['speedup']}x\n")
    assert result["speedup"] >= 10.0, (
        f"warm compile only {result['speedup']}x faster than cold")


def main():
    results = run_benchmarks()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    write_results(results,
                  os.path.join(ARTIFACT_DIR, "e9_kernels_fresh.json"))
    for name, result in sorted(results["kernels"].items()):
        print(f"{name:22s} new={result['new_ms']:9.3f}ms "
              f"naive={result['naive_ms']:9.3f}ms "
              f"speedup={result['speedup']:6.2f}x")
    cache = results["plan_cache"]
    print(f"{'plan_cache':22s} cold={cache['cold_ms']}ms "
          f"warm={cache['warm_us']}us speedup={cache['speedup']}x")
    print(f"wrote {os.path.join(ARTIFACT_DIR, 'e9_kernels_fresh.json')}")


if __name__ == "__main__":
    main()
